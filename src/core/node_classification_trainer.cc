#include "src/core/node_classification_trainer.h"

#include <algorithm>

#include "src/core/checkpoint.h"
#include "src/pipeline/training_pipeline.h"
#include "src/policy/policy.h"
#include "src/tensor/ops.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace mariusgnn {

struct NodeClassificationTrainer::PreparedBatch {
  std::vector<int64_t> nodes;  // batch target nodes
  std::vector<int64_t> labels;
  DenseBatch dense;
  std::vector<int64_t> dense_nodes;
  LayerwiseSample layerwise;
};

NodeClassificationTrainer::NodeClassificationTrainer(const Graph* graph,
                                                     TrainingConfig config)
    : TrainerBase(graph, std::move(config), TaskKind::kNodeClassification) {
  if (!config_.storage.use_disk) {
    full_index_ = std::make_unique<NeighborIndex>(*graph_);
  } else {
    MG_CHECK(config_.storage.num_physical >= 2 && config_.storage.buffer_capacity >= 2);
    MG_CHECK_MSG(config_.sampler == SamplerKind::kDense,
                 "baseline sampler supports in-memory training only");
    partitioning_ = std::make_unique<Partitioning>(
        *graph_, config_.storage.num_physical, PartitionAssignment::kTrainingNodesFirst, rng_);
    const std::string path = config_.storage.dir.empty()
                                 ? TempPath("mgnn_nc_features")
                                 : config_.storage.dir + "/features.bin";
    buffer_ = std::make_unique<PartitionBuffer>(
        partitioning_.get(), graph_->features().cols(), config_.storage.buffer_capacity, path,
        config_.storage.disk_model, /*learnable=*/false, &graph_->features(),
        config_.MakePartitionIoOptions());
    buffer_store_ = std::make_unique<BufferedEmbeddingStore>(buffer_.get(),
                                                             /*trainable=*/false);
    buffer_store_->set_compute(&compute_);
  }
}

NodeClassificationTrainer::~NodeClassificationTrainer() = default;

Tensor NodeClassificationTrainer::GatherFeatures(const std::vector<int64_t>& nodes,
                                                 bool from_graph) {
  if (from_graph || !use_buffer_features_) {
    return IndexSelect(graph_->features(), nodes, &compute_);
  }
  Tensor out;
  buffer_store_->Gather(nodes, &out);
  return out;
}

// Batch construction (pipeline stage 1). Runs on worker threads: everything is
// derived from `batch_seed` and read-only state (see training_pipeline.h).
NodeClassificationTrainer::PreparedBatch NodeClassificationTrainer::PrepareBatch(
    const std::vector<int64_t>& nodes, uint64_t batch_seed) const {
  PreparedBatch batch;
  batch.nodes = nodes;
  batch.labels.reserve(nodes.size());
  for (int64_t v : nodes) {
    batch.labels.push_back(graph_->labels()[static_cast<size_t>(v)]);
  }
  if (model_.dense_sampler != nullptr) {
    batch.dense = model_.dense_sampler->SampleSeeded(nodes, MixSeed(batch_seed, 2));
    batch.dense.FinalizeForDevice();
    batch.dense_nodes = batch.dense.node_ids;
  } else {
    batch.layerwise = model_.layerwise_sampler->SampleSeeded(nodes, MixSeed(batch_seed, 3));
  }
  return batch;
}

void NodeClassificationTrainer::ConsumeBatch(PreparedBatch& batch,
                                             EpochStats* stats) {
  Tensor reprs;
  if (model_.encoder != nullptr) {
    Tensor h0 = GatherFeatures(batch.dense_nodes, /*from_graph=*/false);
    reprs = model_.encoder->Forward(batch.dense, h0);
  } else {
    Tensor h0 = GatherFeatures(batch.layerwise.input_nodes(), /*from_graph=*/false);
    reprs = model_.block_encoder->Forward(batch.layerwise, h0);
  }
  Tensor logits = model_.head->Forward(reprs);
  Tensor dlogits;
  const float loss = SoftmaxCrossEntropy(logits, batch.labels, &dlogits, &compute_);
  Tensor dreprs = model_.head->Backward(dlogits);
  if (model_.encoder != nullptr) {
    model_.encoder->Backward(dreprs);  // features are fixed; d(h0) is discarded
  } else {
    model_.block_encoder->Backward(dreprs);
  }
  // Features are fixed inputs: no sparse stream, only the dense weights go
  // through the gradient-exchange seam.
  ExchangeApply(/*has_batch=*/true, loss, nullptr, nullptr, nullptr, 0.0f,
                stats);
}

// One PipelineSession spans the whole epoch (see the link-prediction trainer):
// the producer maps the session's global index onto the current set's local
// batch number, then through ReplicaBatchPartition onto the set's GLOBAL batch
// number g — rank r builds exactly the batches with g % world == r, seeded by
// ReplicaBatchPartition::BatchSeed(per-set run_seed, g). For world == 1 the
// stream is bit-identical to the single-replica pipelines this replaces.
std::unique_ptr<PipelineSession> NodeClassificationTrainer::MakeSession(
    EpochStats* stats) {
  return std::make_unique<PipelineSession>(
      config_.MakePipelineSessionOptions(controller_.workers()),
      [this](int64_t index) -> std::shared_ptr<void> {
        const int64_t g = replica_.GlobalIndex(index - run_batch_base_);
        const int64_t begin = g * config_.batch_size;
        const int64_t end = begin + config_.batch_size < run_total_
                                ? begin + config_.batch_size
                                : run_total_;
        const std::vector<int64_t> ids(run_nodes_->begin() + begin,
                                       run_nodes_->begin() + end);
        return std::make_shared<PreparedBatch>(PrepareBatch(
            ids, ReplicaBatchPartition::BatchSeed(run_seed_, g)));
      },
      [this, stats](void* item, int64_t) {
        // In-order consumer; ConsumeBatch routes the step through the exchange
        // seam, which folds every replica's loss into the determinism hash.
        ConsumeBatch(*static_cast<PreparedBatch*>(item), stats);
      });
}

PipelineStats NodeClassificationTrainer::RunBatches(
    const std::vector<int64_t>& nodes, const NeighborIndex& index,
    PipelineSession* session, EpochStats* stats) {
  const int64_t total = static_cast<int64_t>(nodes.size());
  if (total == 0) {
    return PipelineStats();
  }
  // Point the samplers at this run's index once, up front; workers then only call
  // const, seed-driven sampling methods. Safe between segments: workers never
  // claim an index beyond the announced limit.
  if (model_.dense_sampler != nullptr) {
    model_.dense_sampler->set_index(&index);
  }
  if (model_.layerwise_sampler != nullptr) {
    model_.layerwise_sampler->set_index(&index);
  }
  run_nodes_ = &nodes;
  run_seed_ = rng_.Next();
  run_batch_base_ = session->announced();
  run_total_ = total;
  const int64_t num_batches =
      (total + config_.batch_size - 1) / config_.batch_size;
  // Rank r consumes only the global batches with g % world == r (see the
  // link-prediction trainer); short ranks run trailing batchless exchanges so
  // every rank performs the same exchange sequence.
  const int64_t local_batches = replica_.LocalCount(num_batches);
  const int64_t steps = replica_.StepCount(num_batches);
  const PipelineStats ps = session->RunSegment(local_batches);
  for (int64_t s = local_batches; s < steps; ++s) {
    ExchangeApply(/*has_batch=*/false, 0.0f, nullptr, nullptr, nullptr, 0.0f,
                  stats);
  }
  int64_t local_examples = local_batches * config_.batch_size;
  if (local_batches > 0 &&
      replica_.GlobalIndex(local_batches - 1) == num_batches - 1) {
    local_examples += total - (num_batches - 1) * config_.batch_size -
                      config_.batch_size;
  }
  stats->AccumulatePipeline(ps, local_examples);
  return ps;
}

void NodeClassificationTrainer::ReportSetBoundary(
    PipelineSession* session, const PipelineStats& ps,
    const ComputeStats& compute_before, double io_stall_delta,
    double window_seconds, bool more_sets, EpochStats* stats) {
  controller_.ReportSetBoundary(ps, compute_stats_, compute_before, io_stall_delta,
                                window_seconds, more_sets, session,
                                &stats->workers_per_set, &stats->resize_count);
}

EpochStats NodeClassificationTrainer::TrainEpochImpl() {
  EpochStats stats;
  compute_stats_.Reset();
  std::vector<int64_t> train = graph_->train_nodes();
  rng_.Shuffle(train);
  stats.pipeline_workers = controller_.workers();
  std::unique_ptr<PipelineSession> session = MakeSession(&stats);

  if (!config_.storage.use_disk) {
    WallTimer timer;
    const ComputeStats compute_before = compute_stats_;
    const PipelineStats ps = RunBatches(train, *full_index_, session.get(), &stats);
    stats.compute_seconds = timer.Seconds();
    stats.wall_seconds = stats.compute_seconds;
    ReportSetBoundary(session.get(), ps, compute_before, /*io_stall_delta=*/0.0,
                      timer.Seconds(), /*more_sets=*/false, &stats);
    stats.num_partition_sets = 1;
  } else {
    const auto sets =
        caching_policy_.GenerateEpoch(*partitioning_, config_.storage.buffer_capacity, rng_);
    stats.num_partition_sets = static_cast<int64_t>(sets.size());
    double prev_compute = 0.0;
    // A partition's training nodes are trained the first time it becomes resident
    // (in the cached regime all training partitions are resident in the single set).
    std::vector<char> partition_done(static_cast<size_t>(config_.storage.num_physical), 0);
    for (size_t i = 0; i < sets.size(); ++i) {
      const ComputeStats compute_before = compute_stats_;
      const double io_stall_before = stats.io_stall_seconds;
      WallTimer window_timer;
      const double sync_io = buffer_->SetResident(sets[i]);
      stats.AccumulateSwapIo(sync_io, buffer_->ConsumeBackgroundIoSeconds(),
                             prev_compute);

      if (config_.storage.prefetch && i + 1 < sets.size()) {
        buffer_->Prefetch(PrefetchDelta(sets[i], sets[i + 1]));
      }

      WallTimer set_timer;
      std::vector<Edge> resident_edges;
      std::vector<char> resident_fresh(static_cast<size_t>(config_.storage.num_physical), 0);
      for (int32_t a : sets[i]) {
        if (partition_done[static_cast<size_t>(a)] == 0) {
          resident_fresh[static_cast<size_t>(a)] = 1;
          partition_done[static_cast<size_t>(a)] = 1;
        }
        for (int32_t b : sets[i]) {
          for (int64_t e : partitioning_->Bucket(a, b)) {
            resident_edges.push_back(graph_->edge(e));
          }
        }
      }
      NeighborIndex index(graph_->num_nodes(), resident_edges);

      std::vector<int64_t> subset;
      for (int64_t v : train) {
        if (resident_fresh[static_cast<size_t>(partitioning_->PartitionOf(v))] != 0) {
          subset.push_back(v);
        }
      }
      PipelineStats ps;
      if (!subset.empty()) {
        use_buffer_features_ = true;
        ps = RunBatches(subset, index, session.get(), &stats);
        use_buffer_features_ = false;
      }
      prev_compute = set_timer.Seconds();
      stats.compute_seconds += prev_compute;
      ReportSetBoundary(session.get(), ps, compute_before,
                        stats.io_stall_seconds - io_stall_before,
                        window_timer.Seconds(), i + 1 < sets.size(), &stats);
    }
    const IoEngineStats engine_io = buffer_->ConsumeIoStats();
    stats.io_read_bytes = engine_io.read_bytes;
    stats.io_write_bytes = engine_io.write_bytes;
    stats.io_queue_depth_mean = engine_io.queue_depth_mean;
    stats.io_inflight_peak = engine_io.inflight_peak;
    stats.wall_seconds = stats.compute_seconds + stats.io_stall_seconds;
  }
  stats.compute_parallel_efficiency = compute_stats_.ParallelEfficiency();
  controller_.ObserveEpoch(stats.compute_parallel_efficiency);
  if (stats.num_global_batches > 0) {
    stats.loss /= static_cast<double>(stats.num_global_batches);
  }
  return stats;
}

// Evaluation-time samples are seeded from the run seed (see the link-prediction
// trainer): metrics are a pure function of model state, identical across
// repeated calls and across a checkpoint resume.
Tensor NodeClassificationTrainer::InferLogits(const std::vector<int64_t>& nodes,
                                              const NeighborIndex& index) {
  const uint64_t eval_seed = MixSeed(config_.seed, 0x4556414CULL);  // "EVAL"
  return model_.InferLogits(
      nodes, eval_seed, index,
      [&](const std::vector<int64_t>& ids) { return GatherFeatures(ids, /*from_graph=*/true); },
      &compute_);
}

double NodeClassificationTrainer::EvaluateAccuracy(const std::vector<int64_t>& nodes) {
  if (nodes.empty()) {
    return 0.0;
  }
  if (full_index_ == nullptr) {
    full_index_ = std::make_unique<NeighborIndex>(*graph_);
  }
  int64_t correct = 0;
  const int64_t chunk = 512;
  for (size_t begin = 0; begin < nodes.size(); begin += chunk) {
    const size_t end = std::min(nodes.size(), begin + chunk);
    std::vector<int64_t> batch(nodes.begin() + begin, nodes.begin() + end);
    Tensor logits = InferLogits(batch, *full_index_);
    for (int64_t r = 0; r < logits.rows(); ++r) {
      int64_t best = 0;
      for (int64_t c = 1; c < logits.cols(); ++c) {
        if (logits(r, c) > logits(r, best)) {
          best = c;
        }
      }
      if (best == graph_->labels()[static_cast<size_t>(batch[static_cast<size_t>(r)])]) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

}  // namespace mariusgnn
