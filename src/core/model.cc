#include "src/core/model.h"

#include "src/util/check.h"

namespace mariusgnn {

const char* CheckpointKindName(TaskKind kind) {
  return kind == TaskKind::kLinkPrediction ? "link_prediction" : "node_classification";
}

void ModelState::ValidateConfig(TaskKind kind, const Graph& graph,
                                const ModelConfig& config) {
  MG_CHECK(!config.dims.empty());
  MG_CHECK(static_cast<int64_t>(config.dims.size()) == config.num_layers() + 1);
  if (kind == TaskKind::kNodeClassification) {
    MG_CHECK(graph.has_features());
    MG_CHECK(!graph.labels().empty() && graph.num_classes() > 0);
    MG_CHECK(config.num_layers() >= 1);
    MG_CHECK(config.dims.front() == graph.features().cols());
  }
}

// RNG draw order is part of the checkpoint/trajectory contract: encoder layers
// first, then the task head, exactly as the trainers have always initialised.
// The samplers use their own seed-derived streams (seed + 1) and draw nothing
// from `rng`.
ModelState ModelState::Build(TaskKind kind, const Graph& graph,
                             const ModelConfig& config, Rng& rng) {
  ValidateConfig(kind, graph, config);
  ModelState m;
  m.kind = kind;
  m.config = config;
  if (config.num_layers() > 0) {
    if (config.sampler == SamplerKind::kDense) {
      m.encoder = std::make_unique<GnnEncoder>(config.layer_type, config.dims,
                                               Activation::kRelu, rng);
      m.dense_sampler = std::make_unique<DenseSampler>(nullptr, config.fanouts,
                                                       config.direction, config.seed + 1);
    } else {
      m.block_encoder = std::make_unique<BlockEncoder>(config.layer_type, config.dims,
                                                       Activation::kRelu, rng);
      m.layerwise_sampler = std::make_unique<LayerwiseSampler>(
          nullptr, config.fanouts, config.direction, config.seed + 1);
    }
  }
  if (kind == TaskKind::kLinkPrediction) {
    m.decoder = MakeDecoder(config.decoder, graph.num_relations(), config.dims.back(), rng);
  } else {
    m.head = std::make_unique<LinearLayer>(config.dims.back(), graph.num_classes(), rng);
  }
  m.weight_opt = std::make_unique<Adagrad>(config.weight_lr);

  if (m.encoder != nullptr) {
    m.params = m.encoder->Parameters();
  } else if (m.block_encoder != nullptr) {
    m.params = m.block_encoder->Parameters();
  }
  if (m.decoder != nullptr) {
    for (Parameter* p : m.decoder->Parameters()) {
      m.params.push_back(p);
    }
  }
  if (m.head != nullptr) {
    for (Parameter* p : m.head->Parameters()) {
      m.params.push_back(p);
    }
  }
  return m;
}

void ModelState::SetCompute(const ComputeContext* compute) {
  if (encoder != nullptr) {
    encoder->set_compute(compute);
  }
  if (block_encoder != nullptr) {
    block_encoder->set_compute(compute);
  }
  if (decoder != nullptr) {
    decoder->set_compute(compute);
  }
  if (head != nullptr) {
    head->set_compute(compute);
  }
  weight_opt->set_compute(compute);
}

Tensor ModelState::InferReprs(
    const std::vector<int64_t>& nodes, uint64_t sample_seed,
    const NeighborIndex& index,
    const std::function<Tensor(const std::vector<int64_t>&)>& gather,
    const ComputeContext* compute) const {
  if (encoder != nullptr) {
    DenseBatch batch = dense_sampler->SampleSeeded(nodes, sample_seed, &index);
    batch.FinalizeForDevice();
    Tensor h0 = gather(batch.node_ids);
    return encoder->InferForward(batch, h0, compute);
  }
  if (block_encoder != nullptr) {
    LayerwiseSample sample = layerwise_sampler->SampleSeeded(nodes, sample_seed, &index);
    Tensor h0 = gather(sample.input_nodes());
    return block_encoder->InferForward(sample, h0, compute);
  }
  return gather(nodes);
}

Tensor ModelState::InferLogits(
    const std::vector<int64_t>& nodes, uint64_t sample_seed,
    const NeighborIndex& index,
    const std::function<Tensor(const std::vector<int64_t>&)>& gather,
    const ComputeContext* compute) const {
  MG_CHECK_MSG(head != nullptr, "InferLogits requires a node-classification model");
  Tensor reprs = InferReprs(nodes, sample_seed, index, gather, compute);
  return head->InferForward(reprs, compute);
}

}  // namespace mariusgnn
