#include "src/core/checkpoint.h"

#include <cerrno>
#include <cstring>
#include <memory>

#include "src/storage/io_arena.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

constexpr uint64_t kCheckpointMagic = 0x4D474E4E43503031ULL;  // "MGNNCP01"

// Preamble field offsets (see checkpoint.h for the layout).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffKindLen = 12;
constexpr size_t kOffManifestBytes = 16;
constexpr size_t kOffManifestChecksum = 24;
constexpr size_t kOffDataBytes = 32;
constexpr size_t kOffDataChecksum = 40;
constexpr size_t kPreambleBytes = 48;

uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void AppendBytes(std::vector<uint8_t>& buf, const void* src, size_t len) {
  if (len == 0) {
    return;  // empty tensors have a null data(); never form a pointer range from it
  }
  const uint8_t* p = static_cast<const uint8_t*>(src);
  buf.insert(buf.end(), p, p + len);
}

template <typename T>
void AppendPod(std::vector<uint8_t>& buf, T value) {
  AppendBytes(buf, &value, sizeof(value));
}

void AppendString(std::vector<uint8_t>& buf, const std::string& s) {
  AppendPod<uint32_t>(buf, static_cast<uint32_t>(s.size()));
  AppendBytes(buf, s.data(), s.size());
}

// Bounds-checked cursor over an untrusted byte buffer: every primitive read
// fails (returns false) instead of running past the end, so a truncated
// manifest surfaces as a clean parse error.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  bool Pod(T* out) {
    if (len_ - pos_ < sizeof(T)) {
      return false;
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool String(std::string* out, size_t max_len = 4096) {
    uint32_t n = 0;
    if (!Pod(&n) || n > max_len || len_ - pos_ < n) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool Done() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// Reads the whole file into `out` without aborting on a missing/unreadable path.
// The positional-read loop itself (EINTR retry, short-read detection) lives in
// File::ReadAt so there is exactly one copy of that policy in the codebase.
bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error) {
  std::string open_error;
  const std::unique_ptr<File> f = File::TryOpenReadOnly(path, &open_error);
  if (f == nullptr) {
    return Fail(error, "cannot open checkpoint '" + path + "': " + open_error);
  }
  out->resize(static_cast<size_t>(f->Size()));
  if (!out->empty()) {
    f->ReadAt(out->data(), out->size(), 0);
  }
  return true;
}

}  // namespace

const Tensor& Checkpoint::tensor(const std::string& name) const {
  for (const auto& [n, t] : tensors) {
    if (n == name) {
      return t;
    }
  }
  MG_CHECK_MSG(false, ("checkpoint is missing tensor section '" + name + "'").c_str());
}

std::string ParamSectionName(size_t index, const char* field) {
  return "param" + std::to_string(index) + "." + field;
}

void RestoreParamFromCheckpoint(Parameter* p, const Tensor& value,
                                const Tensor& state) {
  MG_CHECK_MSG(value.rows() == p->value.rows() && value.cols() == p->value.cols(),
               "checkpoint parameter shape mismatch (different model config?)");
  MG_CHECK_MSG(state.empty() || (state.rows() == value.rows() &&
                                 state.cols() == value.cols()),
               "checkpoint optimizer-state shape mismatch");
  p->value = value;
  p->state = state;
  p->grad = Tensor(value.rows(), value.cols());
}

int64_t Checkpoint::scalar(const std::string& name, int64_t fallback) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) {
      return v;
    }
  }
  return fallback;
}

void SaveTrainerCheckpointCore(const std::string& kind, uint64_t run_seed,
                               int64_t epochs_completed, const Rng& rng,
                               const PipelineController& controller,
                               const std::vector<Parameter*>& params,
                               Checkpoint* out) {
  out->kind = kind;
  out->run_seed = run_seed;
  out->epoch = static_cast<uint64_t>(epochs_completed);
  rng.SaveState(out->rng_state);
  out->scalars.emplace_back("controller_workers", controller.workers());
  out->scalars.emplace_back("controller_cooldown",
                            controller.queue_cooldown_remaining());
  for (size_t i = 0; i < params.size(); ++i) {
    out->tensors.emplace_back(ParamSectionName(i, "value"), params[i]->value);
    out->tensors.emplace_back(ParamSectionName(i, "state"), params[i]->state);
  }
}

void RestoreTrainerCheckpointCore(const Checkpoint& ck, const std::string& kind,
                                  uint64_t run_seed, size_t extra_sections,
                                  const std::vector<Parameter*>& params, Rng* rng,
                                  int64_t* epochs_completed,
                                  PipelineController* controller) {
  MG_CHECK_MSG(ck.kind == kind,
               "checkpoint was written by a different trainer kind");
  MG_CHECK_MSG(ck.run_seed == run_seed,
               "checkpoint was written with a different run seed");
  MG_CHECK_MSG(ck.tensors.size() == params.size() * 2 + extra_sections,
               "checkpoint section count mismatch (different model config?)");
  for (size_t i = 0; i < params.size(); ++i) {
    RestoreParamFromCheckpoint(params[i], ck.tensor(ParamSectionName(i, "value")),
                               ck.tensor(ParamSectionName(i, "state")));
  }
  rng->RestoreState(ck.rng_state);
  *epochs_completed = static_cast<int64_t>(ck.epoch);
  controller->RestoreState(
      static_cast<int>(ck.scalar("controller_workers", controller->workers())),
      static_cast<int>(ck.scalar("controller_cooldown", 0)));
}

void SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path) {
  // Manifest blob. Section offsets are 4 KiB-aligned within the data block
  // (format v2) so each payload lands page-aligned in the file — the gaps are
  // zero padding, included in the data blob and its checksum.
  std::vector<uint8_t> manifest;
  AppendBytes(manifest, checkpoint.kind.data(), checkpoint.kind.size());
  AppendPod<uint64_t>(manifest, checkpoint.run_seed);
  AppendPod<uint64_t>(manifest, checkpoint.epoch);
  for (uint64_t w : checkpoint.rng_state) {
    AppendPod<uint64_t>(manifest, w);
  }
  AppendPod<uint32_t>(manifest, static_cast<uint32_t>(checkpoint.scalars.size()));
  for (const auto& [name, value] : checkpoint.scalars) {
    AppendString(manifest, name);
    AppendPod<int64_t>(manifest, value);
  }
  AppendPod<uint32_t>(manifest, static_cast<uint32_t>(checkpoint.tensors.size()));
  uint64_t data_offset = 0;
  for (const auto& [name, t] : checkpoint.tensors) {
    data_offset = AlignUpIo(data_offset);
    AppendString(manifest, name);
    AppendPod<int64_t>(manifest, t.rows());
    AppendPod<int64_t>(manifest, t.cols());
    const uint64_t bytes = static_cast<uint64_t>(t.size()) * sizeof(float);
    AppendPod<uint64_t>(manifest, data_offset);
    AppendPod<uint64_t>(manifest, bytes);
    data_offset += bytes;
  }

  // Data blob (payloads at their aligned offsets; zero-filled gaps between).
  std::vector<uint8_t> data;
  data.reserve(static_cast<size_t>(AlignUpIo(data_offset)));
  for (const auto& [name, t] : checkpoint.tensors) {
    (void)name;
    data.resize(AlignUpIo(data.size()), 0);
    AppendBytes(data, t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  }

  // Preamble. The data block starts at the first 4 KiB boundary after the
  // manifest, keeping the in-block alignment meaningful file-absolute.
  const uint64_t data_start = AlignUpIo(kPreambleBytes + manifest.size());
  std::vector<uint8_t> preamble;
  preamble.reserve(kPreambleBytes);
  AppendPod<uint64_t>(preamble, kCheckpointMagic);
  AppendPod<uint32_t>(preamble, kCheckpointFormatVersion);
  AppendPod<uint32_t>(preamble, static_cast<uint32_t>(checkpoint.kind.size()));
  AppendPod<uint64_t>(preamble, static_cast<uint64_t>(manifest.size()));
  AppendPod<uint64_t>(preamble, Fnv1a64(manifest.data(), manifest.size()));
  AppendPod<uint64_t>(preamble, static_cast<uint64_t>(data.size()));
  AppendPod<uint64_t>(preamble, Fnv1a64(data.data(), data.size()));
  MG_CHECK(preamble.size() == kPreambleBytes);

  AtomicFile file(path);
  file.WriteAt(preamble.data(), preamble.size(), 0);
  file.WriteAt(manifest.data(), manifest.size(), kPreambleBytes);
  if (!data.empty()) {
    // The manifest→data gap is a file hole; it reads back as zeros and is not
    // part of either checksummed blob.
    file.WriteAt(data.data(), data.size(), data_start);
  }
  file.Commit();
}

namespace {

// Shared preamble + manifest parser behind LoadCheckpoint and
// ReadCheckpointManifest. `head` must hold the preamble and the whole manifest
// (callers size it from the preamble's manifest_bytes); `file_size` is the full
// checkpoint file length, used to validate the data-block geometry without
// touching the data itself. Fills *out with file-absolute section offsets.
bool ParseCheckpointHead(const uint8_t* head, size_t head_len, uint64_t file_size,
                         CheckpointManifest* out, std::string* error) {
  if (head_len < kPreambleBytes || file_size < kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: file shorter than the preamble");
  }
  auto read_u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, head + off, sizeof(v));
    return v;
  };
  auto read_u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, head + off, sizeof(v));
    return v;
  };
  if (read_u64(kOffMagic) != kCheckpointMagic) {
    return Fail(error, "not a checkpoint file (bad magic)");
  }
  const uint32_t version = read_u32(kOffVersion);
  if (version < kMinCheckpointFormatVersion || version > kCheckpointFormatVersion) {
    return Fail(error, "unsupported checkpoint format version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kMinCheckpointFormatVersion) + ".." +
                           std::to_string(kCheckpointFormatVersion) + ")");
  }
  const uint32_t kind_len = read_u32(kOffKindLen);
  const uint64_t manifest_bytes = read_u64(kOffManifestBytes);
  const uint64_t data_bytes = read_u64(kOffDataBytes);
  // Overflow-safe size validation before trusting any on-disk length. v1 packs
  // the data block flush against the manifest; v2 starts it at the next 4 KiB
  // boundary (a v2 file with no data block ends right after the manifest).
  const uint64_t remaining = file_size - kPreambleBytes;
  if (manifest_bytes > remaining || manifest_bytes + kPreambleBytes > head_len) {
    return Fail(error, "corrupt checkpoint: truncated manifest");
  }
  const uint64_t manifest_end = kPreambleBytes + manifest_bytes;
  const uint64_t data_start =
      version >= 2 ? (manifest_end + kIoAlignment - 1) & ~(uint64_t{kIoAlignment} - 1)
                   : manifest_end;
  const bool size_ok =
      data_bytes == 0 ? file_size == manifest_end
                      : data_start <= file_size && data_bytes == file_size - data_start;
  if (!size_ok) {
    return Fail(error, "corrupt checkpoint: truncated manifest or data block");
  }
  const uint8_t* manifest = head + kPreambleBytes;
  if (Fnv1a64(manifest, manifest_bytes) != read_u64(kOffManifestChecksum)) {
    return Fail(error, "corrupt checkpoint: manifest checksum mismatch");
  }

  CheckpointManifest m;
  m.version = version;
  m.data_start = data_start;
  m.data_bytes = data_bytes;
  m.aligned_sections = version >= 2;
  if (kind_len > manifest_bytes) {
    return Fail(error, "corrupt checkpoint: kind length exceeds manifest");
  }
  m.kind.assign(reinterpret_cast<const char*>(manifest), kind_len);
  Reader body(manifest + kind_len, manifest_bytes - kind_len);
  uint32_t num_scalars = 0;
  uint32_t num_sections = 0;
  bool ok = body.Pod(&m.run_seed) && body.Pod(&m.epoch);
  for (uint64_t& w : m.rng_state) {
    ok = ok && body.Pod(&w);
  }
  ok = ok && body.Pod(&num_scalars);
  for (uint32_t i = 0; ok && i < num_scalars; ++i) {
    std::string name;
    int64_t value = 0;
    ok = body.String(&name) && body.Pod(&value);
    if (ok) {
      m.scalars.emplace_back(std::move(name), value);
    }
  }
  ok = ok && body.Pod(&num_sections);
  for (uint32_t i = 0; ok && i < num_sections; ++i) {
    CheckpointSectionInfo s;
    uint64_t offset = 0;
    ok = body.String(&s.name) && body.Pod(&s.rows) && body.Pod(&s.cols) &&
         body.Pod(&offset) && body.Pod(&s.bytes);
    if (!ok) {
      break;
    }
    // Overflow-guarded geometry validation: rows * cols * sizeof(float) must
    // equal the section size exactly, and bytes <= data_bytes bounds the
    // product — so wraparound cannot smuggle a huge claimed shape past the
    // check (Tensor would otherwise overflow rows * cols, UB on int64).
    const uint64_t urows = static_cast<uint64_t>(s.rows);
    const uint64_t ucols = static_cast<uint64_t>(s.cols);
    const bool shape_overflows =
        ucols != 0 && urows > (data_bytes / sizeof(float)) / ucols;
    if (s.rows < 0 || s.cols < 0 || shape_overflows ||
        urows * ucols * sizeof(float) != s.bytes || offset > data_bytes ||
        s.bytes > data_bytes - offset) {
      return Fail(error, "corrupt checkpoint: tensor section '" + s.name +
                             "' is out of bounds");
    }
    s.file_offset = data_start + offset;
    m.sections.push_back(std::move(s));
  }
  if (!ok || !body.Done()) {
    return Fail(error, "corrupt checkpoint: malformed manifest");
  }
  *out = std::move(m);
  return true;
}

}  // namespace

const CheckpointSectionInfo* CheckpointManifest::FindSection(
    const std::string& name) const {
  for (const CheckpointSectionInfo& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

bool ReadCheckpointManifest(const std::string& path, CheckpointManifest* out,
                            std::string* error) {
  std::string open_error;
  const std::unique_ptr<File> f = File::TryOpenReadOnly(path, &open_error);
  if (f == nullptr) {
    return Fail(error, "cannot open checkpoint '" + path + "': " + open_error);
  }
  const uint64_t file_size = static_cast<uint64_t>(f->Size());
  if (file_size < kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: file shorter than the preamble");
  }
  uint8_t preamble[kPreambleBytes];
  f->ReadAt(preamble, kPreambleBytes, 0);
  uint64_t manifest_bytes = 0;
  std::memcpy(&manifest_bytes, preamble + kOffManifestBytes, sizeof(manifest_bytes));
  if (manifest_bytes > file_size - kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: truncated manifest");
  }
  std::vector<uint8_t> head(kPreambleBytes + static_cast<size_t>(manifest_bytes));
  std::memcpy(head.data(), preamble, kPreambleBytes);
  if (manifest_bytes > 0) {
    f->ReadAt(head.data() + kPreambleBytes, static_cast<size_t>(manifest_bytes),
              kPreambleBytes);
  }
  return ParseCheckpointHead(head.data(), head.size(), file_size, out, error);
}

bool LoadCheckpoint(const std::string& path, Checkpoint* out, std::string* error) {
  std::vector<uint8_t> bytes;
  if (!ReadWholeFile(path, &bytes, error)) {
    return false;
  }
  CheckpointManifest m;
  if (!ParseCheckpointHead(bytes.data(), bytes.size(),
                           static_cast<uint64_t>(bytes.size()), &m, error)) {
    return false;
  }
  // A no-data checkpoint ends right after the manifest; never form a pointer
  // past the buffer for the empty-checksum case.
  const uint8_t* data = m.data_bytes > 0 ? bytes.data() + m.data_start : nullptr;
  uint64_t data_checksum = 0;
  std::memcpy(&data_checksum, bytes.data() + kOffDataChecksum, sizeof(data_checksum));
  if (Fnv1a64(data, m.data_bytes) != data_checksum) {
    return Fail(error, "corrupt checkpoint: data checksum mismatch");
  }

  Checkpoint ck;
  ck.kind = m.kind;
  ck.run_seed = m.run_seed;
  ck.epoch = m.epoch;
  for (size_t i = 0; i < 4; ++i) {
    ck.rng_state[i] = m.rng_state[i];
  }
  ck.scalars = std::move(m.scalars);
  for (CheckpointSectionInfo& s : m.sections) {
    std::vector<float> values(static_cast<size_t>(s.rows) * s.cols);
    if (s.bytes > 0) {
      std::memcpy(values.data(), bytes.data() + s.file_offset, s.bytes);
    }
    ck.tensors.emplace_back(std::move(s.name),
                            Tensor(s.rows, s.cols, std::move(values)));
  }
  *out = std::move(ck);
  return true;
}

}  // namespace mariusgnn
