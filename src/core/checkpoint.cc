#include "src/core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/storage/io_arena.h"
#include "src/util/binary_io.h"
#include "src/util/check.h"

namespace mariusgnn {

namespace {

constexpr uint64_t kCheckpointMagic = 0x4D474E4E43503031ULL;  // "MGNNCP01"

// Preamble field offsets (see checkpoint.h for the layout).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffKindLen = 12;
constexpr size_t kOffManifestBytes = 16;
constexpr size_t kOffManifestChecksum = 24;
constexpr size_t kOffDataBytes = 32;
constexpr size_t kOffDataChecksum = 40;
constexpr size_t kPreambleBytes = 48;

constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

// Bounded scratch for the incremental data-checksum folds (the streaming
// writer's read-back of scatter-written sections, and the reader's streaming
// verify). Part of the save path's peak_bytes accounting, so it must stay well
// below one partition of embedding rows.
constexpr uint64_t kChecksumChunkBytes = 256 * 1024;

uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = kFnvOffsetBasis;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// Incremental FNV-1a 64: folding a blob in chunks yields the same value as one
// Fnv1a64 pass — the property the streaming writer/verifier are built on.
void Fnv1a64Fold(uint64_t* h, const uint8_t* data, size_t len) {
  uint64_t v = *h;
  for (size_t i = 0; i < len; ++i) {
    v ^= data[i];
    v *= kFnvPrime;
  }
  *h = v;
}

void Fnv1a64FoldZeros(uint64_t* h, uint64_t count) {
  uint64_t v = *h;
  for (uint64_t i = 0; i < count; ++i) {
    v *= kFnvPrime;  // v ^= 0 is a no-op
  }
  *h = v;
}

void AppendBytes(std::vector<uint8_t>& buf, const void* src, size_t len) {
  if (len == 0) {
    return;  // empty tensors have a null data(); never form a pointer range from it
  }
  const uint8_t* p = static_cast<const uint8_t*>(src);
  buf.insert(buf.end(), p, p + len);
}

template <typename T>
void AppendPod(std::vector<uint8_t>& buf, T value) {
  AppendBytes(buf, &value, sizeof(value));
}

void AppendString(std::vector<uint8_t>& buf, const std::string& s) {
  AppendPod<uint32_t>(buf, static_cast<uint32_t>(s.size()));
  AppendBytes(buf, s.data(), s.size());
}

// Bounds-checked cursor over an untrusted byte buffer: every primitive read
// fails (returns false) instead of running past the end, so a truncated
// manifest surfaces as a clean parse error.
class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  bool Pod(T* out) {
    if (len_ - pos_ < sizeof(T)) {
      return false;
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool String(std::string* out, size_t max_len = 4096) {
    uint32_t n = 0;
    if (!Pod(&n) || n > max_len || len_ - pos_ < n) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool Done() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool ValidateMagicVersion(uint64_t magic, uint32_t version, std::string* error) {
  if (magic != kCheckpointMagic) {
    return Fail(error, "not a checkpoint file (bad magic)");
  }
  if (version < kMinCheckpointFormatVersion || version > kCheckpointFormatVersion) {
    return Fail(error, "unsupported checkpoint format version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kMinCheckpointFormatVersion) + ".." +
                           std::to_string(kCheckpointFormatVersion) + ")");
  }
  return true;
}

uint64_t SectionBytes(const CheckpointSectionSpec& s) {
  return static_cast<uint64_t>(s.rows) * static_cast<uint64_t>(s.cols) *
         sizeof(float);
}

}  // namespace

const Tensor& Checkpoint::tensor(const std::string& name) const {
  if (tensor_index_.size() != tensors.size()) {
    tensor_index_.clear();
    for (size_t i = 0; i < tensors.size(); ++i) {
      tensor_index_.emplace(tensors[i].first, i);
    }
  }
  const auto it = tensor_index_.find(name);
  MG_CHECK_MSG(it != tensor_index_.end(),
               ("checkpoint is missing tensor section '" + name + "'").c_str());
  return tensors[it->second].second;
}

std::string ParamSectionName(size_t index, const char* field) {
  return "param" + std::to_string(index) + "." + field;
}

void RestoreParamFromCheckpoint(Parameter* p, const Tensor& value,
                                const Tensor& state) {
  MG_CHECK_MSG(value.rows() == p->value.rows() && value.cols() == p->value.cols(),
               "checkpoint parameter shape mismatch (different model config?)");
  MG_CHECK_MSG(state.empty() || (state.rows() == value.rows() &&
                                 state.cols() == value.cols()),
               "checkpoint optimizer-state shape mismatch");
  p->value = value;
  p->state = state;
  p->grad = Tensor(value.rows(), value.cols());
}

int64_t Checkpoint::scalar(const std::string& name, int64_t fallback) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) {
      return v;
    }
  }
  return fallback;
}

void BuildTrainerCheckpointRequest(const std::string& kind, uint64_t run_seed,
                                   int64_t epochs_completed, const Rng& rng,
                                   const PipelineController& controller,
                                   const std::vector<Parameter*>& params,
                                   CheckpointSaveRequest* out) {
  out->kind = kind;
  out->run_seed = run_seed;
  out->epoch = static_cast<uint64_t>(epochs_completed);
  rng.SaveState(out->rng_state);
  out->scalars.emplace_back("controller_workers", controller.workers());
  out->scalars.emplace_back("controller_cooldown",
                            controller.queue_cooldown_remaining());
  for (size_t i = 0; i < params.size(); ++i) {
    out->sections.push_back(
        TensorSectionSpec(ParamSectionName(i, "value"), params[i]->value));
    out->sections.push_back(
        TensorSectionSpec(ParamSectionName(i, "state"), params[i]->state));
  }
}

void RestoreTrainerCheckpointCore(CheckpointReader& reader, const std::string& kind,
                                  uint64_t run_seed, size_t extra_sections,
                                  const std::vector<Parameter*>& params, Rng* rng,
                                  int64_t* epochs_completed,
                                  PipelineController* controller) {
  const CheckpointManifest& m = reader.manifest();
  MG_CHECK_MSG(m.kind == kind,
               "checkpoint was written by a different trainer kind");
  MG_CHECK_MSG(m.run_seed == run_seed,
               "checkpoint was written with a different run seed");
  MG_CHECK_MSG(m.sections.size() == params.size() * 2 + extra_sections,
               "checkpoint section count mismatch (different model config?)");
  std::string error;
  for (size_t i = 0; i < params.size(); ++i) {
    const CheckpointSectionInfo* vs = reader.FindSection(ParamSectionName(i, "value"));
    const CheckpointSectionInfo* ss = reader.FindSection(ParamSectionName(i, "state"));
    MG_CHECK_MSG(vs != nullptr && ss != nullptr,
                 "checkpoint is missing a model parameter section");
    std::vector<float> value_data(static_cast<size_t>(vs->rows) * vs->cols);
    MG_CHECK_MSG(reader.ReadSection(*vs, value_data.data(), &error), error.c_str());
    std::vector<float> state_data(static_cast<size_t>(ss->rows) * ss->cols);
    MG_CHECK_MSG(reader.ReadSection(*ss, state_data.data(), &error), error.c_str());
    RestoreParamFromCheckpoint(
        params[i], Tensor(vs->rows, vs->cols, std::move(value_data)),
        Tensor(ss->rows, ss->cols, std::move(state_data)));
  }
  rng->RestoreState(m.rng_state);
  *epochs_completed = static_cast<int64_t>(m.epoch);
  controller->RestoreState(
      static_cast<int>(m.scalar("controller_workers", controller->workers())),
      static_cast<int>(m.scalar("controller_cooldown", 0)));
}

// ---------------------------------------------------------------------------
// Streaming save
// ---------------------------------------------------------------------------

CheckpointSectionWriter::CheckpointSectionWriter(AtomicFile* file,
                                                 uint64_t file_offset,
                                                 uint64_t bytes, uint64_t row_bytes,
                                                 uint64_t* checksum,
                                                 uint64_t* staging_peak)
    : file_(file),
      file_offset_(file_offset),
      bytes_(bytes),
      row_bytes_(row_bytes),
      checksum_(checksum),
      staging_peak_(staging_peak) {}

void CheckpointSectionWriter::Append(const void* src, size_t bytes) {
  if (bytes == 0) {
    return;
  }
  // A section producer is either sequential (checksum folds inline, in file
  // order) or scattered (re-folded from the file afterwards) — mixing the two
  // would corrupt the running fold.
  MG_CHECK_MSG(scattered_ == 0,
               "checkpoint section mixed Append with WriteRows");
  MG_CHECK_MSG(cursor_ + bytes <= bytes_, "checkpoint section overflow");
  file_->WriteAt(src, bytes, file_offset_ + cursor_);
  Fnv1a64Fold(checksum_, static_cast<const uint8_t*>(src), bytes);
  cursor_ += bytes;
}

void CheckpointSectionWriter::WriteRows(int64_t row, int64_t count,
                                        const void* src) {
  if (count == 0) {
    return;
  }
  MG_CHECK_MSG(cursor_ == 0, "checkpoint section mixed WriteRows with Append");
  MG_CHECK(row >= 0 && count > 0 && row_bytes_ > 0);
  const uint64_t offset = static_cast<uint64_t>(row) * row_bytes_;
  const uint64_t n = static_cast<uint64_t>(count) * row_bytes_;
  MG_CHECK_MSG(offset <= bytes_ && n <= bytes_ - offset,
               "checkpoint section row range out of bounds");
  file_->WriteAt(src, n, file_offset_ + offset);
  scattered_ += n;
}

void CheckpointSectionWriter::NoteStagingBytes(uint64_t bytes) {
  *staging_peak_ = std::max(*staging_peak_, bytes);
}

CheckpointSectionSpec TensorSectionSpec(std::string name, const Tensor& t) {
  CheckpointSectionSpec spec;
  spec.name = std::move(name);
  spec.rows = t.rows();
  spec.cols = t.cols();
  spec.write = [&t](CheckpointSectionWriter* w) {
    w->Append(t.data(), static_cast<size_t>(t.size()) * sizeof(float));
  };
  return spec;
}

CheckpointSaveStats SaveCheckpointStreaming(const CheckpointSaveRequest& request,
                                            const std::string& path) {
  const auto start_time = std::chrono::steady_clock::now();

  // Manifest first: every section's shape is known up front, so the whole head
  // — and with it every section's aligned file offset — exists before a single
  // payload byte is produced. Section offsets are 4 KiB-aligned within the data
  // block (format v2) so each payload lands page-aligned in the file; the gaps
  // are zero padding, included in the data blob and its checksum.
  std::vector<uint8_t> manifest;
  AppendBytes(manifest, request.kind.data(), request.kind.size());
  AppendPod<uint64_t>(manifest, request.run_seed);
  AppendPod<uint64_t>(manifest, request.epoch);
  for (uint64_t w : request.rng_state) {
    AppendPod<uint64_t>(manifest, w);
  }
  AppendPod<uint32_t>(manifest, static_cast<uint32_t>(request.scalars.size()));
  for (const auto& [name, value] : request.scalars) {
    AppendString(manifest, name);
    AppendPod<int64_t>(manifest, value);
  }
  AppendPod<uint32_t>(manifest, static_cast<uint32_t>(request.sections.size()));
  std::vector<uint64_t> section_offsets;  // relative to the data block
  section_offsets.reserve(request.sections.size());
  uint64_t data_offset = 0;
  for (const CheckpointSectionSpec& s : request.sections) {
    data_offset = AlignUpIo(data_offset);
    section_offsets.push_back(data_offset);
    AppendString(manifest, s.name);
    AppendPod<int64_t>(manifest, s.rows);
    AppendPod<int64_t>(manifest, s.cols);
    AppendPod<uint64_t>(manifest, data_offset);
    AppendPod<uint64_t>(manifest, SectionBytes(s));
    data_offset += SectionBytes(s);
  }
  const uint64_t data_bytes = data_offset;
  // The data block starts at the first 4 KiB boundary after the manifest,
  // keeping the in-block alignment meaningful file-absolute. The manifest→data
  // gap is a file hole; it reads back as zeros and is in neither checksum.
  const uint64_t data_start = AlignUpIo(kPreambleBytes + manifest.size());

  AtomicFile file(path);
  if (data_bytes > 0) {
    // Pre-size the tmp file so sections can land at their final offsets in any
    // order; unwritten gaps (alignment padding, trailing pad before an empty
    // final section) read back as zeros, exactly what the format requires.
    file.Resize(data_start + data_bytes);
  }
  file.WriteAt(manifest.data(), manifest.size(), kPreambleBytes);

  uint64_t staging_peak = 0;
  uint64_t data_checksum = kFnvOffsetBasis;
  uint64_t folded = 0;        // data-block bytes folded into the checksum so far
  std::vector<uint8_t> chunk;  // read-back scratch; allocated only when needed

  for (size_t i = 0; i < request.sections.size(); ++i) {
    const CheckpointSectionSpec& spec = request.sections[i];
    const uint64_t rel = section_offsets[i];
    const uint64_t bytes = SectionBytes(spec);
    Fnv1a64FoldZeros(&data_checksum, rel - folded);  // inter-section padding
    const uint64_t row_bytes =
        static_cast<uint64_t>(spec.cols) * sizeof(float);
    CheckpointSectionWriter writer(&file, data_start + rel, bytes, row_bytes,
                                   &data_checksum, &staging_peak);
    if (spec.write) {
      spec.write(&writer);
    }
    if (writer.scattered_ > 0) {
      // Rows arrived out of file order (e.g. partition-by-partition over a
      // random node permutation): the inline fold was skipped, so re-fold this
      // section by reading it back from the tmp file in bounded chunks. This is
      // one extra sequential pass over data that is still page-cache warm.
      MG_CHECK_MSG(writer.scattered_ == bytes,
                   "checkpoint section producer did not cover every row");
      if (chunk.empty()) {
        chunk.resize(static_cast<size_t>(
            std::min<uint64_t>(kChecksumChunkBytes, bytes)));
      }
      uint64_t off = 0;
      while (off < bytes) {
        const size_t n =
            static_cast<size_t>(std::min<uint64_t>(chunk.size(), bytes - off));
        file.ReadAt(chunk.data(), n, data_start + rel + off);
        Fnv1a64Fold(&data_checksum, chunk.data(), n);
        off += n;
      }
    } else {
      MG_CHECK_MSG(writer.cursor_ == bytes,
                   "checkpoint section producer wrote the wrong byte count");
    }
    folded = rel + bytes;
  }
  // Trailing padding: an empty final section's aligned offset can extend the
  // data block past the last payload byte.
  Fnv1a64FoldZeros(&data_checksum, data_bytes - folded);

  // Preamble last: until this write the tmp file has no valid magic, so a crash
  // mid-save can never be mistaken for a complete checkpoint even before the
  // rename barrier.
  std::vector<uint8_t> preamble;
  preamble.reserve(kPreambleBytes);
  AppendPod<uint64_t>(preamble, kCheckpointMagic);
  AppendPod<uint32_t>(preamble, kCheckpointFormatVersion);
  AppendPod<uint32_t>(preamble, static_cast<uint32_t>(request.kind.size()));
  AppendPod<uint64_t>(preamble, static_cast<uint64_t>(manifest.size()));
  AppendPod<uint64_t>(preamble, Fnv1a64(manifest.data(), manifest.size()));
  AppendPod<uint64_t>(preamble, data_bytes);
  AppendPod<uint64_t>(preamble, data_checksum);
  MG_CHECK(preamble.size() == kPreambleBytes);
  file.WriteAt(preamble.data(), preamble.size(), 0);
  file.Commit();

  CheckpointSaveStats stats;
  stats.bytes_written =
      data_bytes > 0 ? data_start + data_bytes : kPreambleBytes + manifest.size();
  stats.peak_bytes = kPreambleBytes + manifest.size() + staging_peak +
                     static_cast<uint64_t>(chunk.capacity());
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time)
          .count();
  return stats;
}

void SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path) {
  CheckpointSaveRequest request;
  request.kind = checkpoint.kind;
  request.run_seed = checkpoint.run_seed;
  request.epoch = checkpoint.epoch;
  for (size_t i = 0; i < 4; ++i) {
    request.rng_state[i] = checkpoint.rng_state[i];
  }
  request.scalars = checkpoint.scalars;
  request.sections.reserve(checkpoint.tensors.size());
  for (const auto& [name, t] : checkpoint.tensors) {
    request.sections.push_back(TensorSectionSpec(name, t));
  }
  SaveCheckpointStreaming(request, path);
}

// ---------------------------------------------------------------------------
// Manifest parsing / manifest-driven restore
// ---------------------------------------------------------------------------

namespace {

// Shared preamble + manifest parser behind LoadCheckpoint, CheckpointReader and
// ReadCheckpointManifest. `head` must hold the preamble and the whole manifest
// (callers size it from the preamble's manifest_bytes); `file_size` is the full
// checkpoint file length, used to validate the data-block geometry without
// touching the data itself. Fills *out with file-absolute section offsets.
bool ParseCheckpointHead(const uint8_t* head, size_t head_len, uint64_t file_size,
                         CheckpointManifest* out, std::string* error) {
  if (head_len < kPreambleBytes || file_size < kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: file shorter than the preamble");
  }
  auto read_u64 = [&](size_t off) {
    uint64_t v;
    std::memcpy(&v, head + off, sizeof(v));
    return v;
  };
  auto read_u32 = [&](size_t off) {
    uint32_t v;
    std::memcpy(&v, head + off, sizeof(v));
    return v;
  };
  const uint32_t version = read_u32(kOffVersion);
  if (!ValidateMagicVersion(read_u64(kOffMagic), version, error)) {
    return false;
  }
  const uint32_t kind_len = read_u32(kOffKindLen);
  const uint64_t manifest_bytes = read_u64(kOffManifestBytes);
  const uint64_t data_bytes = read_u64(kOffDataBytes);
  // Overflow-safe size validation before trusting any on-disk length. v1 packs
  // the data block flush against the manifest; v2 starts it at the next 4 KiB
  // boundary (a v2 file with no data block ends right after the manifest).
  const uint64_t remaining = file_size - kPreambleBytes;
  if (manifest_bytes > remaining || manifest_bytes + kPreambleBytes > head_len) {
    return Fail(error, "corrupt checkpoint: truncated manifest");
  }
  const uint64_t manifest_end = kPreambleBytes + manifest_bytes;
  const uint64_t data_start =
      version >= 2 ? (manifest_end + kIoAlignment - 1) & ~(uint64_t{kIoAlignment} - 1)
                   : manifest_end;
  const bool size_ok =
      data_bytes == 0 ? file_size == manifest_end
                      : data_start <= file_size && data_bytes == file_size - data_start;
  if (!size_ok) {
    return Fail(error, "corrupt checkpoint: truncated manifest or data block");
  }
  const uint8_t* manifest = head + kPreambleBytes;
  if (Fnv1a64(manifest, manifest_bytes) != read_u64(kOffManifestChecksum)) {
    return Fail(error, "corrupt checkpoint: manifest checksum mismatch");
  }

  CheckpointManifest m;
  m.version = version;
  m.data_start = data_start;
  m.data_bytes = data_bytes;
  m.aligned_sections = version >= 2;
  if (kind_len > manifest_bytes) {
    return Fail(error, "corrupt checkpoint: kind length exceeds manifest");
  }
  m.kind.assign(reinterpret_cast<const char*>(manifest), kind_len);
  Reader body(manifest + kind_len, manifest_bytes - kind_len);
  uint32_t num_scalars = 0;
  uint32_t num_sections = 0;
  bool ok = body.Pod(&m.run_seed) && body.Pod(&m.epoch);
  for (uint64_t& w : m.rng_state) {
    ok = ok && body.Pod(&w);
  }
  ok = ok && body.Pod(&num_scalars);
  for (uint32_t i = 0; ok && i < num_scalars; ++i) {
    std::string name;
    int64_t value = 0;
    ok = body.String(&name) && body.Pod(&value);
    if (ok) {
      m.scalars.emplace_back(std::move(name), value);
    }
  }
  ok = ok && body.Pod(&num_sections);
  for (uint32_t i = 0; ok && i < num_sections; ++i) {
    CheckpointSectionInfo s;
    uint64_t offset = 0;
    ok = body.String(&s.name) && body.Pod(&s.rows) && body.Pod(&s.cols) &&
         body.Pod(&offset) && body.Pod(&s.bytes);
    if (!ok) {
      break;
    }
    // Overflow-guarded geometry validation: rows * cols * sizeof(float) must
    // equal the section size exactly, and bytes <= data_bytes bounds the
    // product — so wraparound cannot smuggle a huge claimed shape past the
    // check (Tensor would otherwise overflow rows * cols, UB on int64).
    const uint64_t urows = static_cast<uint64_t>(s.rows);
    const uint64_t ucols = static_cast<uint64_t>(s.cols);
    const bool shape_overflows =
        ucols != 0 && urows > (data_bytes / sizeof(float)) / ucols;
    if (s.rows < 0 || s.cols < 0 || shape_overflows ||
        urows * ucols * sizeof(float) != s.bytes || offset > data_bytes ||
        s.bytes > data_bytes - offset) {
      return Fail(error, "corrupt checkpoint: tensor section '" + s.name +
                             "' is out of bounds");
    }
    s.file_offset = data_start + offset;
    m.sections.push_back(std::move(s));
  }
  if (!ok || !body.Done()) {
    return Fail(error, "corrupt checkpoint: malformed manifest");
  }
  // Name index for O(1) FindSection — restore touches every section once, so
  // the lookup must not be a linear scan per section.
  m.section_index.reserve(m.sections.size());
  for (size_t i = 0; i < m.sections.size(); ++i) {
    m.section_index.emplace(m.sections[i].name, i);
  }
  *out = std::move(m);
  return true;
}

}  // namespace

const CheckpointSectionInfo* CheckpointManifest::FindSection(
    const std::string& name) const {
  if (section_index.size() == sections.size()) {
    const auto it = section_index.find(name);
    return it == section_index.end() ? nullptr : &sections[it->second];
  }
  // Hand-assembled manifest without an index (tests): fall back to a scan.
  for (const CheckpointSectionInfo& s : sections) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

int64_t CheckpointManifest::scalar(const std::string& name,
                                   int64_t fallback) const {
  for (const auto& [n, v] : scalars) {
    if (n == name) {
      return v;
    }
  }
  return fallback;
}

bool CheckpointReader::Open(const std::string& path, std::string* error) {
  std::string open_error;
  file_ = File::TryOpenReadOnly(path, &open_error);
  if (file_ == nullptr) {
    return Fail(error, "cannot open checkpoint '" + path + "': " + open_error);
  }
  const uint64_t file_size = file_->Size();
  if (file_size < kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: file shorter than the preamble");
  }
  uint8_t preamble[kPreambleBytes];
  std::string io_error;
  if (!file_->TryReadAt(preamble, kPreambleBytes, 0, &io_error)) {
    return Fail(error, "corrupt checkpoint: " + io_error);
  }
  // Magic and version are validated straight from the preamble BEFORE the head
  // allocation is sized from the untrusted manifest_bytes field — a garbage
  // multi-GiB file must fail here, not inside a huge allocation.
  uint64_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, preamble + kOffMagic, sizeof(magic));
  std::memcpy(&version, preamble + kOffVersion, sizeof(version));
  if (!ValidateMagicVersion(magic, version, error)) {
    return false;
  }
  uint64_t manifest_bytes = 0;
  std::memcpy(&manifest_bytes, preamble + kOffManifestBytes, sizeof(manifest_bytes));
  if (manifest_bytes > file_size - kPreambleBytes) {
    return Fail(error, "corrupt checkpoint: truncated manifest");
  }
  std::vector<uint8_t> head(kPreambleBytes + static_cast<size_t>(manifest_bytes));
  std::memcpy(head.data(), preamble, kPreambleBytes);
  if (manifest_bytes > 0 &&
      !file_->TryReadAt(head.data() + kPreambleBytes,
                        static_cast<size_t>(manifest_bytes), kPreambleBytes,
                        &io_error)) {
    return Fail(error, "corrupt checkpoint: " + io_error);
  }
  if (!ParseCheckpointHead(head.data(), head.size(), file_size, &manifest_, error)) {
    return false;
  }
  std::memcpy(&data_checksum_, preamble + kOffDataChecksum, sizeof(data_checksum_));
  return true;
}

bool CheckpointReader::VerifyDataChecksum(std::string* error) {
  MG_CHECK_MSG(file_ != nullptr, "CheckpointReader::Open must succeed first");
  uint64_t h = kFnvOffsetBasis;
  if (manifest_.data_bytes > 0) {
    std::vector<uint8_t> chunk(static_cast<size_t>(
        std::min<uint64_t>(kChecksumChunkBytes, manifest_.data_bytes)));
    uint64_t off = manifest_.data_start;
    uint64_t remaining = manifest_.data_bytes;
    std::string io_error;
    while (remaining > 0) {
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(chunk.size(), remaining));
      if (!file_->TryReadAt(chunk.data(), n, off, &io_error)) {
        return Fail(error, "corrupt checkpoint: " + io_error);
      }
      Fnv1a64Fold(&h, chunk.data(), n);
      off += n;
      remaining -= n;
    }
  }
  if (h != data_checksum_) {
    return Fail(error, "corrupt checkpoint: data checksum mismatch");
  }
  return true;
}

bool CheckpointReader::ReadSection(const CheckpointSectionInfo& s, void* dst,
                                   std::string* error) {
  if (s.bytes == 0) {
    return true;
  }
  std::string io_error;
  if (!file_->TryReadAt(dst, static_cast<size_t>(s.bytes), s.file_offset,
                        &io_error)) {
    return Fail(error, "corrupt checkpoint: " + io_error);
  }
  return true;
}

bool CheckpointReader::ReadRows(const CheckpointSectionInfo& s, int64_t row,
                                int64_t count, void* dst, std::string* error) {
  if (count == 0) {
    return true;
  }
  if (row < 0 || count < 0 || row > s.rows || count > s.rows - row) {
    return Fail(error, "checkpoint section row range out of bounds");
  }
  const uint64_t row_bytes = static_cast<uint64_t>(s.cols) * sizeof(float);
  std::string io_error;
  if (!file_->TryReadAt(dst, static_cast<size_t>(count * row_bytes),
                        s.file_offset + static_cast<uint64_t>(row) * row_bytes,
                        &io_error)) {
    return Fail(error, "corrupt checkpoint: " + io_error);
  }
  return true;
}

bool ReadCheckpointManifest(const std::string& path, CheckpointManifest* out,
                            std::string* error) {
  CheckpointReader reader;
  if (!reader.Open(path, error)) {
    return false;
  }
  *out = reader.manifest();
  return true;
}

bool LoadCheckpoint(const std::string& path, Checkpoint* out, std::string* error) {
  CheckpointReader reader;
  if (!reader.Open(path, error)) {
    return false;
  }
  if (!reader.VerifyDataChecksum(error)) {
    return false;
  }
  const CheckpointManifest& m = reader.manifest();
  Checkpoint ck;
  ck.kind = m.kind;
  ck.run_seed = m.run_seed;
  ck.epoch = m.epoch;
  for (size_t i = 0; i < 4; ++i) {
    ck.rng_state[i] = m.rng_state[i];
  }
  ck.scalars = m.scalars;
  for (const CheckpointSectionInfo& s : m.sections) {
    std::vector<float> values(static_cast<size_t>(s.rows) * s.cols);
    if (!reader.ReadSection(s, values.data(), error)) {
      return false;
    }
    ck.tensors.emplace_back(s.name, Tensor(s.rows, s.cols, std::move(values)));
  }
  *out = std::move(ck);
  return true;
}

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

std::string CheckpointEpochPath(const std::string& base, int64_t epoch) {
  return base + ".epoch" + std::to_string(epoch);
}

namespace {

// "<dir-prefix>" including the trailing '/' (empty for a bare filename), and
// the filename component of `path`.
void SplitCheckpointPath(const std::string& path, std::string* dir_prefix,
                         std::string* filename) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    dir_prefix->clear();
    *filename = path;
  } else {
    *dir_prefix = path.substr(0, slash + 1);
    *filename = path.substr(slash + 1);
  }
}

bool AllDigits(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

// Scans the directory of `base` for retention-managed names. Fills `epochs`
// with (N, filename) for every "<stem>.epoch<N>", and `debris` with stale tmp
// files ("<stem>.tmp", "<stem>.epoch<N>.tmp"). Either output may be null.
void ScanCheckpointDir(const std::string& base,
                       std::vector<std::pair<int64_t, std::string>>* epochs,
                       std::vector<std::string>* debris) {
  std::string dir_prefix, stem;
  SplitCheckpointPath(base, &dir_prefix, &stem);
  const std::string dir = dir_prefix.empty() ? "." : dir_prefix;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return;
  }
  const std::string epoch_prefix = stem + ".epoch";
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == stem + ".tmp") {
      if (debris != nullptr) {
        debris->push_back(name);
      }
      continue;
    }
    if (name.size() <= epoch_prefix.size() ||
        name.compare(0, epoch_prefix.size(), epoch_prefix) != 0) {
      continue;
    }
    std::string tail = name.substr(epoch_prefix.size());
    const bool is_tmp = tail.size() > 4 && tail.compare(tail.size() - 4, 4, ".tmp") == 0;
    if (is_tmp) {
      tail.resize(tail.size() - 4);
    }
    if (!AllDigits(tail)) {
      continue;
    }
    if (is_tmp) {
      if (debris != nullptr) {
        debris->push_back(name);
      }
    } else if (epochs != nullptr) {
      epochs->emplace_back(std::stoll(tail), name);
    }
  }
  ::closedir(d);
}

}  // namespace

void PruneCheckpoints(const std::string& base, int64_t keep_last_k,
                      const std::string& keep_path) {
  if (keep_last_k <= 0) {
    return;
  }
  std::string dir_prefix, stem;
  SplitCheckpointPath(base, &dir_prefix, &stem);
  std::string keep_dir, keep_name;
  SplitCheckpointPath(keep_path, &keep_dir, &keep_name);

  std::vector<std::pair<int64_t, std::string>> epochs;
  std::vector<std::string> debris;
  ScanCheckpointDir(base, &epochs, &debris);

  // Newest first; everything past the first keep_last_k entries goes — except
  // the file just written, which is never deleted regardless of its epoch.
  std::sort(epochs.begin(), epochs.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = static_cast<size_t>(keep_last_k); i < epochs.size(); ++i) {
    if (epochs[i].second == keep_name) {
      continue;
    }
    std::remove((dir_prefix + epochs[i].second).c_str());
  }
  // Stale tmp debris from crashed saves. The just-written file's own tmp name
  // is excluded for safety, though a completed Commit has already renamed it.
  for (const std::string& name : debris) {
    if (name == keep_name + ".tmp") {
      continue;
    }
    std::remove((dir_prefix + name).c_str());
  }
}

std::string LatestCheckpointPath(const std::string& base) {
  std::string dir_prefix, stem;
  SplitCheckpointPath(base, &dir_prefix, &stem);
  std::vector<std::pair<int64_t, std::string>> epochs;
  ScanCheckpointDir(base, &epochs, nullptr);
  if (!epochs.empty()) {
    const auto it = std::max_element(
        epochs.begin(), epochs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return dir_prefix + it->second;
  }
  struct stat st;
  if (::stat(base.c_str(), &st) == 0) {
    return base;
  }
  return std::string();
}

}  // namespace mariusgnn
