// End-to-end node-classification training (Sections 3 and 5.2).
//
// Fixed node features feed a k-layer GNN encoder plus a linear/softmax head. Storage
// modes:
//  - in-memory: features and graph resident, full-graph neighbor sampling;
//  - disk: features stored per-partition on the simulated disk; training nodes are
//    packed into the leading partitions and cached in CPU memory for the whole epoch
//    (the Section 5.2 policy), with sampling restricted to the in-memory subgraph.
#ifndef SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_
#define SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_

#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"
#include "src/nn/encoder.h"
#include "src/nn/linear.h"
#include "src/nn/optimizer.h"
#include "src/policy/node_caching.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/storage/embedding_store.h"
#include "src/storage/partition_buffer.h"
#include "src/util/rng.h"

namespace mariusgnn {

class NodeClassificationTrainer {
 public:
  NodeClassificationTrainer(const Graph* graph, TrainingConfig config);
  ~NodeClassificationTrainer();

  EpochStats TrainEpoch();

  // Crash-safe checkpointing (src/core/checkpoint.h): atomic epoch-boundary
  // snapshot of model parameters + Adagrad accumulators, trainer RNG, and the
  // completed-epoch count (features are fixed inputs, so no embedding table).
  // ResumeFrom restores into a trainer constructed with the SAME config; the
  // continued run is bitwise-identical to one that never stopped. TrainEpoch
  // auto-saves every config.checkpoint_every_n_epochs completed epochs.
  void SaveCheckpoint(const std::string& path);
  void ResumeFrom(const std::string& path);
  int64_t epochs_completed() const { return epochs_completed_; }

  // Multi-class accuracy over a node split, computed with full-graph sampling.
  double EvaluateAccuracy(const std::vector<int64_t>& nodes);
  double EvaluateTestAccuracy() { return EvaluateAccuracy(graph_->test_nodes()); }
  double EvaluateValidAccuracy() { return EvaluateAccuracy(graph_->valid_nodes()); }

  const TrainingConfig& config() const { return config_; }

 private:
  struct PreparedBatch;

  // Pipeline stage 1 (worker threads): pure in `batch_seed`, read-only state; the
  // samplers must already point at the active NeighborIndex (RunBatches does this).
  PreparedBatch PrepareBatch(const std::vector<int64_t>& nodes, uint64_t batch_seed) const;
  // Pipeline stage 3 (calling thread, in batch order).
  float ConsumeBatch(PreparedBatch& batch);
  // Builds the epoch's PipelineSession (one session spans all partition sets; the
  // producer closure reads the run_* members RunBatches swaps between segments).
  std::unique_ptr<PipelineSession> MakeSession(EpochStats* stats);
  // Runs one partition set's batches as a session segment (serial when
  // !config_.pipelined) and folds its timings into `stats`.
  PipelineStats RunBatches(const std::vector<int64_t>& nodes,
                           const NeighborIndex& index, PipelineSession* session,
                           EpochStats* stats);
  // Reports a partition-set boundary into the pipeline layer: records the set's
  // worker decision and feeds the controller its signal window; the controller may
  // resize the session's workers for the next set.
  void ReportSetBoundary(PipelineSession* session, const PipelineStats& ps,
                         const ComputeStats& compute_before, double io_stall_delta,
                         double window_seconds, bool more_sets, EpochStats* stats);
  EpochStats TrainEpochImpl();
  Tensor GatherFeatures(const std::vector<int64_t>& nodes, bool from_graph);
  Tensor InferLogits(const std::vector<int64_t>& nodes, const NeighborIndex& index);

  const Graph* graph_;
  TrainingConfig config_;
  Rng rng_;
  int64_t epochs_completed_ = 0;

  // Stage-3 parallel compute (see src/util/compute.h).
  ComputeStats compute_stats_;
  ComputeContext compute_;
  // In-epoch pipeline controller (see pipeline_controller.h).
  PipelineController controller_;

  // Current segment's producer state, swapped by RunBatches between partition
  // sets (safe: workers never claim an index beyond the announced limit).
  const std::vector<int64_t>* run_nodes_ = nullptr;
  uint64_t run_seed_ = 0;
  int64_t run_batch_base_ = 0;
  int64_t run_total_ = 0;

  std::unique_ptr<GnnEncoder> encoder_;
  std::unique_ptr<BlockEncoder> block_encoder_;
  std::unique_ptr<LinearLayer> head_;
  std::unique_ptr<Adagrad> weight_opt_;
  std::vector<Parameter*> weight_params_;

  std::unique_ptr<DenseSampler> dense_sampler_;
  std::unique_ptr<LayerwiseSampler> layerwise_sampler_;

  std::unique_ptr<NeighborIndex> full_index_;

  // Disk state (features are read-only: no write-back).
  std::unique_ptr<Partitioning> partitioning_;
  std::unique_ptr<PartitionBuffer> buffer_;
  std::unique_ptr<BufferedEmbeddingStore> buffer_store_;  // chunked Gather over buffer_
  NodeCachingPolicy caching_policy_;
  bool use_buffer_features_ = false;  // true while training from resident partitions
};

}  // namespace mariusgnn

#endif  // SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_
