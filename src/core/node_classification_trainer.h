// End-to-end node-classification training (Sections 3 and 5.2).
//
// Fixed node features feed a k-layer GNN encoder plus a linear/softmax head. Storage
// modes:
//  - in-memory: features and graph resident, full-graph neighbor sampling;
//  - disk: features stored per-partition on the simulated disk; training nodes are
//    packed into the leading partitions and cached in CPU memory for the whole epoch
//    (the Section 5.2 policy), with sampling restricted to the in-memory subgraph.
//
// The model itself (encoder/head/optimizer/samplers) lives in the inherited
// ModelState (src/core/model.h); this class adds the feature storage and the
// training loop.
#ifndef SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_
#define SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_

#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/trainer_base.h"
#include "src/graph/graph.h"
#include "src/graph/partition.h"
#include "src/policy/node_caching.h"
#include "src/storage/embedding_store.h"
#include "src/storage/partition_buffer.h"

namespace mariusgnn {

class NodeClassificationTrainer : public TrainerBase {
 public:
  NodeClassificationTrainer(const Graph* graph, TrainingConfig config);
  ~NodeClassificationTrainer() override;

  // Multi-class accuracy over a node split, computed with full-graph sampling.
  double EvaluateAccuracy(const std::vector<int64_t>& nodes);
  double EvaluateTestAccuracy() { return EvaluateAccuracy(graph_->test_nodes()); }
  double EvaluateValidAccuracy() { return EvaluateAccuracy(graph_->valid_nodes()); }

 protected:
  // Features are fixed inputs, so the checkpoint has no extra sections beyond
  // the model parameters (TrainerBase defaults).
  EpochStats TrainEpochImpl() override;

 private:
  struct PreparedBatch;

  // Pipeline stage 1 (worker threads): pure in `batch_seed`, read-only state; the
  // samplers must already point at the active NeighborIndex (RunBatches does this).
  PreparedBatch PrepareBatch(const std::vector<int64_t>& nodes, uint64_t batch_seed) const;
  // Pipeline stage 3 (calling thread, in batch order): forward/backward, then
  // the dense-weight update through the gradient-exchange seam (ExchangeApply).
  void ConsumeBatch(PreparedBatch& batch, EpochStats* stats);
  // Builds the epoch's PipelineSession (one session spans all partition sets; the
  // producer closure reads the run_* members RunBatches swaps between segments).
  std::unique_ptr<PipelineSession> MakeSession(EpochStats* stats);
  // Runs one partition set's batches as a session segment (serial when
  // !config_.pipeline.enabled) and folds its timings into `stats`.
  PipelineStats RunBatches(const std::vector<int64_t>& nodes,
                           const NeighborIndex& index, PipelineSession* session,
                           EpochStats* stats);
  // Reports a partition-set boundary into the pipeline layer: records the set's
  // worker decision and feeds the controller its signal window; the controller may
  // resize the session's workers for the next set.
  void ReportSetBoundary(PipelineSession* session, const PipelineStats& ps,
                         const ComputeStats& compute_before, double io_stall_delta,
                         double window_seconds, bool more_sets, EpochStats* stats);
  Tensor GatherFeatures(const std::vector<int64_t>& nodes, bool from_graph);
  Tensor InferLogits(const std::vector<int64_t>& nodes, const NeighborIndex& index);

  // Current segment's producer state, swapped by RunBatches between partition
  // sets (safe: workers never claim an index beyond the announced limit).
  const std::vector<int64_t>* run_nodes_ = nullptr;
  uint64_t run_seed_ = 0;
  int64_t run_batch_base_ = 0;
  int64_t run_total_ = 0;

  std::unique_ptr<NeighborIndex> full_index_;

  // Disk state (features are read-only: no write-back).
  std::unique_ptr<Partitioning> partitioning_;
  std::unique_ptr<PartitionBuffer> buffer_;
  std::unique_ptr<BufferedEmbeddingStore> buffer_store_;  // chunked Gather over buffer_
  NodeCachingPolicy caching_policy_;
  bool use_buffer_features_ = false;  // true while training from resident partitions
};

}  // namespace mariusgnn

#endif  // SRC_CORE_NODE_CLASSIFICATION_TRAINER_H_
