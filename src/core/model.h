// The shared model object behind both trainers and the serving tier.
//
// ModelState owns everything that defines "the model" for one task: the GNN
// encoder (DENSE or baseline block execution), the task head (link-prediction
// decoder or node-classification linear layer), the weight optimizer, the
// Parameters() list in checkpoint section order, and the neighborhood samplers.
// Both trainers construct one through ModelState::Build — so the two cannot
// drift — and the inference server loads checkpoint parameters into one and
// drives the const forward path (InferForward / SampleForInference) that never
// mutates shared state, making a single ModelState safe for concurrent readers.
#ifndef SRC_CORE_MODEL_H_
#define SRC_CORE_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/neighbor_index.h"
#include "src/nn/decoder.h"
#include "src/nn/encoder.h"
#include "src/nn/linear.h"
#include "src/nn/optimizer.h"
#include "src/sampler/dense.h"
#include "src/sampler/layerwise.h"
#include "src/util/compute.h"
#include "src/util/rng.h"

namespace mariusgnn {

enum class SamplerKind {
  kDense,      // MariusGNN: DENSE with one-hop sample reuse (Algorithm 1)
  kLayerwise,  // baseline: DGL/PyG-style per-layer resampling + block execution
};

enum class TaskKind { kLinkPrediction, kNodeClassification };

// The checkpoint `kind` tag for a task ("link_prediction" / "node_classification").
const char* CheckpointKindName(TaskKind kind);

// Everything needed to build the model, independent of how it is trained (the
// storage/pipeline/checkpoint knobs stay in TrainingConfig; see
// TrainingConfig::model_config()).
struct ModelConfig {
  GnnLayerType layer_type = GnnLayerType::kGraphSage;
  std::vector<int64_t> fanouts;  // per hop, ordered away from targets; empty = no GNN
  std::vector<int64_t> dims;     // dims[0] = base representation width
  EdgeDirection direction = EdgeDirection::kBoth;
  std::string decoder = "distmult";  // link prediction only
  SamplerKind sampler = SamplerKind::kDense;
  float weight_lr = 0.01f;  // Adagrad on GNN/decoder/head weights
  uint64_t seed = 7;

  int64_t num_layers() const { return static_cast<int64_t>(fanouts.size()); }
};

struct ModelState {
  TaskKind kind = TaskKind::kLinkPrediction;
  ModelConfig config;

  // Exactly one encoder is set when num_layers > 0 (DENSE vs baseline); both are
  // null for decoder-only link prediction.
  std::unique_ptr<GnnEncoder> encoder;
  std::unique_ptr<BlockEncoder> block_encoder;
  std::unique_ptr<Decoder> decoder;   // link prediction
  std::unique_ptr<LinearLayer> head;  // node classification
  std::unique_ptr<Adagrad> weight_opt;
  // Encoder then task-head parameters, in the order checkpoint sections use
  // ("param<i>.value"/"param<i>.state"). Pointers stay valid across moves: they
  // point into the unique_ptr-owned components.
  std::vector<Parameter*> params;

  std::unique_ptr<DenseSampler> dense_sampler;
  std::unique_ptr<LayerwiseSampler> layerwise_sampler;

  // Task-specific config/graph compatibility checks (aborts with a clear message).
  static void ValidateConfig(TaskKind kind, const Graph& graph,
                             const ModelConfig& config);

  // Builds the model for `kind`, drawing initial weights from `rng` in a fixed
  // order (encoder, then decoder/head) so trainer trajectories are reproducible.
  static ModelState Build(TaskKind kind, const Graph& graph,
                          const ModelConfig& config, Rng& rng);

  // Threads the stage-3 compute handle through every component that runs kernels
  // (training path; the const inference entry points take their own handle).
  void SetCompute(const ComputeContext* compute);

  bool has_gnn() const { return encoder != nullptr || block_encoder != nullptr; }
  int64_t out_dim() const { return config.dims.back(); }

  // --- Const inference path (shared by trainer evaluation and the server) ---
  //
  // Samples the k-hop neighborhood of `nodes`, entirely derived from
  // `sample_seed` + `index` (never the samplers' internal RNG or index pointer),
  // gathers base representations through `gather` (rows align with the sample's
  // input nodes), and runs the inference-only forward. Bitwise-pure: the same
  // (model state, nodes, seed, index) always produces the same bits, and no
  // shared state is written, so concurrent calls are safe.
  Tensor InferReprs(const std::vector<int64_t>& nodes, uint64_t sample_seed,
                    const NeighborIndex& index,
                    const std::function<Tensor(const std::vector<int64_t>&)>& gather,
                    const ComputeContext* compute) const;

  // Node-classification logits: InferReprs through the linear head.
  Tensor InferLogits(const std::vector<int64_t>& nodes, uint64_t sample_seed,
                     const NeighborIndex& index,
                     const std::function<Tensor(const std::vector<int64_t>&)>& gather,
                     const ComputeContext* compute) const;
};

}  // namespace mariusgnn

#endif  // SRC_CORE_MODEL_H_
