// Training configuration and per-epoch statistics shared by both trainers.
//
// The knob list is grouped into sub-structs by subsystem — StorageOptions
// (partition buffer + IO engine), PipelineOptions (async pipeline + adaptive
// controller + compute parallelism), CheckpointOptions (crash-safe snapshots) —
// so callers configure one subsystem at a time and new knobs land next to their
// neighbors. The old flat field names survive as read-only forwarding accessors
// (config.use_disk() etc.) for call sites that only consume the config.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/gradient_exchange.h"
#include "src/core/model.h"
#include "src/graph/neighbor_index.h"
#include "src/nn/encoder.h"
#include "src/pipeline/pipeline_controller.h"
#include "src/pipeline/training_pipeline.h"
#include "src/storage/disk.h"
#include "src/storage/partition_buffer.h"
#include "src/util/check.h"
#include "src/util/compute.h"

namespace mariusgnn {

// Out-of-core embedding storage: partitioning, buffer replacement, and the
// batched IO engine underneath it (src/storage/).
struct StorageOptions {
  bool use_disk = false;
  int32_t num_physical = 1;    // p
  int32_t num_logical = 1;     // l (COMET)
  int32_t buffer_capacity = 1; // c
  std::string policy = "comet";  // "comet" or "beta" (link prediction)
  bool comet_randomize_grouping = true;   // ablation knob (Section 5.1, mechanism 1)
  bool comet_deferred_assignment = true;  // ablation knob (Section 5.1, mechanism 2)
  DiskModel disk_model;
  bool prefetch = true;  // overlap partition IO with compute in reported timings
  // Batched IO engine knobs (effective only when prefetch is on; see
  // src/storage/io_engine.h). queue_depth is the in-flight transfer limit,
  // io_direct requests O_DIRECT (probed at runtime, buffered fallback), and
  // io_coalesce_writes merges adjacent dirty write-backs. None of these affect
  // training trajectories — only how fast the modeled IO completes.
  int io_queue_depth = 4;
  bool io_direct = true;
  bool io_coalesce_writes = true;
  std::string dir;  // defaults to a fresh temp path
};

// Async batch-construction pipeline, the in-epoch adaptive controller on top of
// it, and stage-3 compute parallelism (src/pipeline/, src/util/compute.h).
struct PipelineOptions {
  bool enabled = true;  // overlap sampling with compute
  // Batch-construction workers when pipelined (TrainingPipeline). Worker count never
  // changes results: batches are derived from per-batch seeds and consumed in order.
  int workers = 2;
  int64_t queue_capacity = 4;  // prepared batches buffered ahead of compute
  // Stage-3 compute parallelism: run the hot kernels (matmuls, neighbor
  // aggregation, ranking loss, sparse Adagrad) in fixed chunks on the shared
  // ThreadPool. Like the pipeline, this never changes results — chunk boundaries
  // and reduction order depend only on tensor shapes (src/util/compute.h), so
  // serial and N-thread runs are bitwise-identical.
  bool parallel_compute = true;
  // Adaptive stage-1/stage-3 pool split (PipelineController): while a window's
  // compute_parallel_efficiency sits below par_eff_low (compute chunks starved of
  // pool threads by epoch-long sampling workers), the next window runs one fewer
  // sampling worker, down to min_workers; while it sits above par_eff_high,
  // workers grow back toward `workers`. In the dead band the controller refines
  // with queue back-pressure: time-weighted queue occupancy above queue_high
  // (fraction of capacity) shrinks, occupancy below queue_low with real consumer
  // stalls grows, and IO-bound windows hold. Worker count never affects results
  // (per-batch seeds + in-order consumption), so the rebalance preserves
  // bitwise-identical trajectories.
  bool adaptive_workers = true;
  // Observation granularity: true = one window per partition set, with worker
  // resizes applied mid-epoch at set boundaries (PipelineSession::Resize); false =
  // the legacy epoch-boundary fallback (also disables the queue-depth signal).
  bool adaptive_within_epoch = true;
  double par_eff_low = 0.40;
  double par_eff_high = 0.85;
  double queue_low = 0.25;
  double queue_high = 0.75;
  double io_stall_hold_fraction = 0.50;
  double stall_grow_fraction = 0.05;
  // Queue-rule decision cool-down: after any worker resize, the queue
  // back-pressure rules stay quiet for this many windows so the shrink/grow pair
  // cannot ping-pong on hosts where neither split wins (the efficiency band is
  // not gated — it has its own hysteresis).
  int queue_cooldown_windows = 2;
  int min_workers = 1;
  // Pool overrides for tests/benches; nullptr = ThreadPool::Global(). Pointing both
  // at one pool exercises the production default of sampling workers and compute
  // chunks sharing the global pool.
  ThreadPool* compute_pool = nullptr;
  ThreadPool* pipeline_pool = nullptr;
};

// Crash-safe checkpointing (src/core/checkpoint.h): every n completed epochs
// the trainer writes an atomic epoch-boundary snapshot (model parameters +
// Adagrad accumulators, embedding table, RNG/epoch state) to `path`. A trainer
// constructed with the same config can ResumeFrom(path) and continue
// bitwise-identically to a run that never stopped. 0 disables automatic
// snapshots (SaveCheckpoint can still be called explicitly).
struct CheckpointOptions {
  int64_t every_n_epochs = 0;
  std::string path;
  // Keep-last-k retention: when > 0, each auto-save lands in a per-epoch file
  // "<path>.epoch<N>" and the oldest files beyond the newest k are pruned after
  // a successful commit (stale ".tmp" debris from crashed saves is swept too).
  // 0 preserves the legacy single-file behavior: every save overwrites `path`.
  int64_t keep_last_k = 0;
};

struct TrainingConfig {
  // Model.
  GnnLayerType layer_type = GnnLayerType::kGraphSage;
  std::vector<int64_t> fanouts;  // per hop, ordered away from targets; empty = no GNN
  std::vector<int64_t> dims;     // dims[0] = base representation width
  EdgeDirection direction = EdgeDirection::kBoth;
  std::string decoder = "distmult";  // link prediction only
  SamplerKind sampler = SamplerKind::kDense;

  // Optimisation.
  int64_t batch_size = 1000;
  int64_t num_negatives = 100;        // link prediction only
  float embedding_lr = 0.1f;          // sparse Adagrad on base representations
  float weight_lr = 0.01f;            // Adagrad on GNN/decoder weights
  uint64_t seed = 7;

  // Subsystem option groups (see the struct docs above; ReplicaOptions lives
  // with its subsystem in src/comm/gradient_exchange.h).
  StorageOptions storage;
  PipelineOptions pipeline;
  CheckpointOptions checkpoint;
  ReplicaOptions replica;

  // Forwarding accessors for the pre-grouping flat field names: read-only views
  // into the sub-structs so consumers of the config stay terse. Writers set the
  // grouped fields directly (config.storage.use_disk = true).
  bool use_disk() const { return storage.use_disk; }
  bool prefetch() const { return storage.prefetch; }
  const std::string& storage_dir() const { return storage.dir; }
  bool pipelined() const { return pipeline.enabled; }
  int pipeline_workers() const { return pipeline.workers; }
  bool parallel_compute() const { return pipeline.parallel_compute; }
  int64_t checkpoint_every_n_epochs() const { return checkpoint.every_n_epochs; }
  const std::string& checkpoint_path() const { return checkpoint.path; }

  int64_t num_layers() const { return static_cast<int64_t>(fanouts.size()); }

  // The model-defining subset of this config (src/core/model.h): what
  // ModelState::Build consumes, shared verbatim by both trainers and the
  // serving tier so a server always reconstructs exactly the trained model.
  ModelConfig model_config() const {
    ModelConfig m;
    m.layer_type = layer_type;
    m.fanouts = fanouts;
    m.dims = dims;
    m.direction = direction;
    m.decoder = decoder;
    m.sampler = sampler;
    m.weight_lr = weight_lr;
    m.seed = seed;
    return m;
  }

  // Pipeline settings for one epoch run, validated (both trainers drive their
  // TrainingPipeline through this so the wiring cannot diverge). `worker_override`
  // (>= 0) substitutes the adaptive split's current worker count when pipelined.
  PipelineSessionOptions MakePipelineSessionOptions(int worker_override = -1) const {
    MG_CHECK_MSG(pipeline.queue_capacity > 0, "pipeline.queue_capacity must be > 0");
    MG_CHECK_MSG(pipeline.workers >= 0, "pipeline.workers must be >= 0");
    PipelineSessionOptions options;
    options.workers = pipeline.enabled ? pipeline.workers : 0;
    if (pipeline.enabled && worker_override >= 0) {
      options.workers = worker_override;
    }
    options.queue_capacity = static_cast<size_t>(pipeline.queue_capacity);
    options.pool = pipeline.pipeline_pool;
    return options;
  }

  // In-epoch pipeline controller for one trainer (both trainers build theirs
  // through this so the thresholds and gating cannot diverge). Adapting is
  // pointless without the shared-pool contention it rebalances, so it requires
  // both the pipeline and stage-3 parallel compute to be on;
  // pipeline.adaptive_within_epoch selects per-partition-set windows (with
  // mid-epoch resizes) vs the legacy epoch-boundary fallback.
  PipelineController MakePipelineController() const {
    PipelineControllerOptions options;
    options.enabled =
        pipeline.adaptive_workers && pipeline.enabled && pipeline.parallel_compute;
    options.max_workers = pipeline.enabled ? pipeline.workers : 0;
    options.min_workers = pipeline.min_workers;
    options.par_eff_low = pipeline.par_eff_low;
    options.par_eff_high = pipeline.par_eff_high;
    options.queue_low = pipeline.queue_low;
    options.queue_high = pipeline.queue_high;
    options.io_stall_hold_fraction = pipeline.io_stall_hold_fraction;
    options.stall_grow_fraction = pipeline.stall_grow_fraction;
    options.queue_cooldown_windows = pipeline.queue_cooldown_windows;
    options.granularity = pipeline.adaptive_within_epoch
                              ? ControllerGranularity::kPartitionSet
                              : ControllerGranularity::kEpoch;
    return PipelineController(options);
  }

  // Partition-buffer IO mode for one trainer (both trainers build theirs through
  // this so the wiring cannot diverge): the batched engine runs iff prefetching
  // is on, with the configured depth/direct/coalescing knobs.
  PartitionIoOptions MakePartitionIoOptions() const {
    MG_CHECK_MSG(storage.io_queue_depth >= 1, "storage.io_queue_depth must be >= 1");
    PartitionIoOptions options;
    options.async = storage.prefetch;
    options.queue_depth = storage.io_queue_depth;
    options.direct_io = storage.io_direct;
    options.coalesce_writes = storage.io_coalesce_writes;
    return options;
  }

  // Gradient-exchange seam for one trainer (both trainers build theirs through
  // this so the replica wiring cannot diverge): the zero-copy LocalExchange
  // when replica.world_size == 1, a localhost-TCP ProcessGroupExchange
  // otherwise (construction blocks until every rank connects;
  // docs/DISTRIBUTED.md).
  std::unique_ptr<GradientExchange> MakeGradientExchange() const {
    return CreateGradientExchange(replica);
  }

  // Stage-3 compute handle for one trainer, recording into `stats` (both trainers
  // build theirs through this so the wiring cannot diverge).
  ComputeContext MakeComputeContext(ComputeStats* stats) const {
    ComputeContext ctx;
    if (pipeline.parallel_compute) {
      ctx.pool = pipeline.compute_pool != nullptr ? pipeline.compute_pool
                                                  : &ThreadPool::Global();
    }
    ctx.stats = stats;
    return ctx;
  }
};

struct EpochStats {
  double loss = 0.0;
  // Per-stage breakdown of the pipeline (Figure 2): sample = batch construction
  // across workers, io = modeled partition IO, compute = the training stage's wall
  // time, stalls = time a stage spent waiting on another.
  double wall_seconds = 0.0;      // compute + unhidden IO stalls
  double compute_seconds = 0.0;
  // Scaling quality of the stage-3 parallel kernels: per-chunk busy time divided by
  // the capacity actually enlisted (sum of region wall x executors). 1.0 = every
  // region fully used its threads; serial runs report 1.0.
  double compute_parallel_efficiency = 1.0;
  double sample_seconds = 0.0;    // batch construction (overlaps compute when pipelined)
  double io_seconds = 0.0;        // total modeled IO
  double io_stall_seconds = 0.0;  // IO not hidden by prefetch overlap
  double pipeline_stall_seconds = 0.0;  // compute blocked waiting for the next batch
  // Cross-replica gradient-exchange accounting (all zero for the world=1
  // LocalExchange): total comm time split into synchronous waits plus
  // background serialize/transport, the part not hidden by compute overlap
  // (same excess-over-overlap convention as io_stall_seconds — see
  // AccumulateComm and docs/ARCHITECTURE.md), and bytes moved on the wire.
  double comm_seconds = 0.0;
  double comm_stall_seconds = 0.0;
  uint64_t comm_bytes = 0;
  // IO-engine transfer counters for the epoch (zero when the engine is off):
  // bytes moved through the engine, the time-weighted mean of outstanding
  // requests while it was busy, and the peak outstanding count.
  uint64_t io_read_bytes = 0;
  uint64_t io_write_bytes = 0;
  double io_queue_depth_mean = 0.0;
  int io_inflight_peak = 0;
  // Stage-1 sampling workers the epoch started with (after the adaptive
  // stage-1/stage-3 split; equals the configured count when adapting is off).
  int pipeline_workers = 0;
  // Per-set decision record of the in-epoch controller: the worker count each
  // partition set ran with, how many mid-epoch resizes it performed, and the
  // time-weighted mean pipeline-queue occupancy (fraction of capacity) across the
  // epoch's pipelined segments.
  std::vector<int> workers_per_set;
  int resize_count = 0;
  double queue_occupancy_mean = 0.0;
  int64_t num_batches = 0;
  int64_t num_examples = 0;
  // Batches folded across ALL replicas this epoch (the loss divisor): every
  // rank's exchange carries every contributed batch's loss, so this equals
  // num_batches when world == 1 and world x the per-rank share otherwise.
  int64_t num_global_batches = 0;
  int64_t num_partition_sets = 0;
  // Ordered FNV-1a 64 fold of every batch's mean-loss bits, in consumption
  // order (docs/DETERMINISM.md). Two runs of the same epoch — serial or
  // pipelined, fresh or resumed, any worker count — must produce the same u64;
  // a mismatch means the batch stream itself diverged. Also persisted in the
  // checkpoint manifest as the "determinism_hash" scalar.
  uint64_t determinism_hash = 0;
  // Runtime-verification violations observed during the epoch (process-wide
  // RvRuntime delta across src/util/rv_monitor.h's monitored invariants).
  // Always 0 unless a pipeline/IO/serving invariant was broken.
  uint64_t rv_violations = 0;
  // Checkpoint auto-save accounting for this epoch; both are 0 when no save
  // ran. peak_bytes is the save path's largest transient allocation (manifest +
  // one partition of staging + the checksum chunk — never a full table image,
  // which is the streaming writer's contract).
  double checkpoint_save_seconds = 0.0;
  uint64_t checkpoint_peak_bytes = 0;

  // Folds one pipeline run over `num_examples` examples into the epoch totals.
  // The epoch-level queue occupancy mean weights each segment by its batch count.
  void AccumulatePipeline(const PipelineStats& ps, int64_t examples) {
    if (num_batches + ps.num_items > 0) {
      queue_occupancy_mean =
          (queue_occupancy_mean * static_cast<double>(num_batches) +
           ps.queue_occupancy_mean * static_cast<double>(ps.num_items)) /
          static_cast<double>(num_batches + ps.num_items);
    }
    num_batches += ps.num_items;
    num_examples += examples;
    sample_seconds += ps.sample_seconds;
    pipeline_stall_seconds += ps.stall_seconds;
  }

  // Folds one partition swap into the epoch totals: synchronous IO (loads the
  // prefetcher missed) stalls in full; background IO (prefetch reads + async
  // write-backs) only by its excess over the compute it overlapped.
  void AccumulateSwapIo(double sync_io, double background_io,
                        double overlapped_compute) {
    io_seconds += sync_io + background_io;
    io_stall_seconds += sync_io + std::max(0.0, background_io - overlapped_compute);
  }

  // Folds the epoch's gradient-exchange accounting into the totals, using the
  // same excess-over-overlap stall convention as AccumulateSwapIo: synchronous
  // exchange waits (the trainer thread blocked inside Exchange) stall in full;
  // background serialize/transport time only by its excess over the compute it
  // overlapped.
  void AccumulateComm(double blocking_comm, double background_comm,
                      double overlapped_compute) {
    comm_seconds += blocking_comm + background_comm;
    comm_stall_seconds +=
        blocking_comm + std::max(0.0, background_comm - overlapped_compute);
  }
};

}  // namespace mariusgnn

#endif  // SRC_CORE_CONFIG_H_
