// Training configuration and per-epoch statistics shared by both trainers.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/neighbor_index.h"
#include "src/nn/encoder.h"
#include "src/storage/disk.h"

namespace mariusgnn {

enum class SamplerKind {
  kDense,      // MariusGNN: DENSE with one-hop sample reuse (Algorithm 1)
  kLayerwise,  // baseline: DGL/PyG-style per-layer resampling + block execution
};

struct TrainingConfig {
  // Model.
  GnnLayerType layer_type = GnnLayerType::kGraphSage;
  std::vector<int64_t> fanouts;  // per hop, ordered away from targets; empty = no GNN
  std::vector<int64_t> dims;     // dims[0] = base representation width
  EdgeDirection direction = EdgeDirection::kBoth;
  std::string decoder = "distmult";  // link prediction only
  SamplerKind sampler = SamplerKind::kDense;

  // Optimisation.
  int64_t batch_size = 1000;
  int64_t num_negatives = 100;        // link prediction only
  float embedding_lr = 0.1f;          // sparse Adagrad on base representations
  float weight_lr = 0.01f;            // Adagrad on GNN/decoder weights
  bool pipelined = true;              // overlap sampling with compute
  uint64_t seed = 7;

  // Storage.
  bool use_disk = false;
  int32_t num_physical = 1;    // p
  int32_t num_logical = 1;     // l (COMET)
  int32_t buffer_capacity = 1; // c
  std::string policy = "comet";  // "comet" or "beta" (link prediction)
  bool comet_randomize_grouping = true;   // ablation knob (Section 5.1, mechanism 1)
  bool comet_deferred_assignment = true;  // ablation knob (Section 5.1, mechanism 2)
  DiskModel disk_model;
  bool prefetch = true;  // overlap partition IO with compute in reported timings
  std::string storage_dir;  // defaults to a fresh temp path

  int64_t num_layers() const { return static_cast<int64_t>(fanouts.size()); }
};

struct EpochStats {
  double loss = 0.0;
  double wall_seconds = 0.0;      // compute + unhidden IO stalls
  double compute_seconds = 0.0;
  double io_seconds = 0.0;        // total modeled IO
  double io_stall_seconds = 0.0;  // IO not hidden by prefetch overlap
  int64_t num_batches = 0;
  int64_t num_examples = 0;
  int64_t num_partition_sets = 0;
};

}  // namespace mariusgnn

#endif  // SRC_CORE_CONFIG_H_
