// Crash-safe checkpoint/restore of training state (epoch-boundary snapshots).
//
// A checkpoint is ONE file holding everything a trainer needs to continue a run
// bitwise-identically to one that never stopped: model parameters with their
// Adagrad accumulators, the embedding table (values + accumulator state, flushed
// through the PartitionBuffer in disk mode), the trainer's full RNG state, the
// run seed, and the number of completed epochs. The determinism contract makes
// this sufficient — every batch is a pure function of MixSeed(run_seed,
// batch_index) and consumption is in-order, so restoring {parameters,
// accumulators, embeddings, RNG words, epoch index} reproduces the exact
// continuation stream.
//
// On-disk layout (host endianness, like every other file in the repo):
//
//   [preamble: magic u64 | version u32 | kind_len u32 |
//    manifest_bytes u64 | manifest_checksum u64 | data_bytes u64 | data_checksum u64]
//   [manifest: kind chars | run_seed u64 | epoch u64 | rng_state u64[4] |
//    num_scalars u32, {name_len u32, name, value i64}... |
//    num_sections u32, {name_len u32, name, rows i64, cols i64,
//                       data_offset u64, data_bytes u64}...]
//   [data: tensor payloads, offsets relative to the data block]
//
// Since format version 2 the data block begins at the first 4 KiB boundary after
// the manifest and every section offset is rounded up to 4 KiB (gaps are zero
// padding, covered by the data checksum). Every payload therefore sits
// page-aligned in the file, so the serving tier can mmap a checkpoint and hand
// out zero-copy section views (src/serve/), and O_DIRECT readers need no bounce
// buffering. Version-1 files (tightly packed) remain readable; only writing is
// always v2.
//
// Both blobs carry FNV-1a 64 checksums; the format version is bumped on any
// layout change. Saving streams section payloads into an AtomicFile (tmp →
// fsync → rename) without ever materialising the full table: the manifest is
// built first (all shapes are known up front), each section producer writes its
// rows at the section's aligned offset, the data checksum is folded
// incrementally, and the preamble is written last, just before Commit(). A
// crash mid-save leaves the previous checkpoint intact and at worst a stale
// <path>.tmp that the next save replaces (or PruneCheckpoints sweeps).
// Restores are manifest-driven: CheckpointReader validates magic, version,
// sizes, and checksums before touching any payload, then preads each section
// range directly into its destination; corruption is reported as a clear error
// instead of loading garbage (or aborting inside a huge allocation).
#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/nn/parameter.h"
#include "src/pipeline/pipeline_controller.h"
#include "src/tensor/tensor.h"
#include "src/util/binary_io.h"
#include "src/util/rng.h"

namespace mariusgnn {

inline constexpr uint32_t kCheckpointFormatVersion = 2;
// Oldest version LoadCheckpoint / ReadCheckpointManifest still accept (v1:
// unpadded sections, no alignment guarantee).
inline constexpr uint32_t kMinCheckpointFormatVersion = 1;

struct Checkpoint {
  // Which trainer wrote this ("link_prediction" / "node_classification"); resume
  // refuses a mismatch.
  std::string kind;
  uint64_t run_seed = 0;
  // Epochs completed when the snapshot was taken; training continues at epoch+1.
  uint64_t epoch = 0;
  // Full xoshiro256** state of the trainer RNG at the epoch boundary.
  uint64_t rng_state[4] = {0, 0, 0, 0};
  // Small named integers (e.g. the pipeline controller's worker decision).
  std::vector<std::pair<std::string, int64_t>> scalars;
  // Named tensor sections in a fixed, kind-defined order: weight parameter
  // values/accumulators, then embedding values/accumulators.
  std::vector<std::pair<std::string, Tensor>> tensors;

  // Convenience lookups; abort with a clear message when the section is absent
  // (a well-formed checkpoint of the right kind always has them). tensor() is
  // O(1) amortised: a name index is (re)built whenever it is stale, so models
  // with many parameters restore in O(n) rather than O(n²).
  const Tensor& tensor(const std::string& name) const;
  int64_t scalar(const std::string& name, int64_t fallback) const;

 private:
  // Lazily rebuilt name → tensors index cache; invalidated by size mismatch
  // (sections are appended, never renamed in place).
  mutable std::unordered_map<std::string, size_t> tensor_index_;
};

// Serialises and writes `checkpoint` to `path` atomically, through the
// streaming writer below (tensor-backed section producers). Aborts on IO errors
// (consistent with the rest of the storage layer: a failed save must not go
// unnoticed), never leaves a torn file behind.
void SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path);

// Reads and validates `path`. Returns false — with a human-readable reason in
// *error — for any missing, truncated, corrupt, or version-mismatched file;
// *out is only written on success. Never aborts on bad input.
bool LoadCheckpoint(const std::string& path, Checkpoint* out, std::string* error);

// ---------------------------------------------------------------------------
// Streaming save
// ---------------------------------------------------------------------------

struct CheckpointSaveRequest;
struct CheckpointSaveStats;

// Handed to a section producer while its payload is being streamed. Rows may be
// appended in file order (cheap: the data checksum folds inline) or scattered
// by row index (the disk-mode embedding table arrives partition-by-partition,
// and partitions hold a random permutation of node ids); scattered sections are
// re-folded from the tmp file in bounded chunks after the producer finishes.
class CheckpointSectionWriter {
 public:
  // Appends `bytes` at the section's running cursor (sequential producers).
  void Append(const void* src, size_t bytes);

  // Writes rows [row, row + count) of this section, in any order. Each row must
  // be written exactly once; the writer checks total coverage at section end.
  void WriteRows(int64_t row, int64_t count, const void* src);

  // Reports the producer's largest transient staging allocation (e.g. one
  // partition's scratch buffer) for peak-memory accounting.
  void NoteStagingBytes(uint64_t bytes);

 private:
  friend CheckpointSaveStats SaveCheckpointStreaming(
      const CheckpointSaveRequest& request, const std::string& path);
  CheckpointSectionWriter(AtomicFile* file, uint64_t file_offset, uint64_t bytes,
                          uint64_t row_bytes, uint64_t* checksum,
                          uint64_t* staging_peak);

  AtomicFile* file_;
  const uint64_t file_offset_;  // absolute offset of the section payload
  const uint64_t bytes_;        // exact payload size
  const uint64_t row_bytes_;    // cols * sizeof(float); 0 for empty sections
  uint64_t* checksum_;          // running FNV-1a fold (sequential path only)
  uint64_t* staging_peak_;
  uint64_t cursor_ = 0;     // bytes appended sequentially
  uint64_t scattered_ = 0;  // bytes written via WriteRows
};

// One section of a streaming save: its name/shape (known up front, so the
// manifest can be serialised before any payload) plus a producer invoked when
// the writer reaches this section. `write` receives a CheckpointSectionWriter
// and must cover exactly rows * cols floats.
struct CheckpointSectionSpec {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  std::function<void(CheckpointSectionWriter*)> write;
};

// Tensor-backed section producer (the in-memory fast path). `t` must outlive
// the SaveCheckpointStreaming call.
CheckpointSectionSpec TensorSectionSpec(std::string name, const Tensor& t);

// Everything SaveCheckpointStreaming needs: the manifest fields plus the
// ordered section specs.
struct CheckpointSaveRequest {
  std::string kind;
  uint64_t run_seed = 0;
  uint64_t epoch = 0;
  uint64_t rng_state[4] = {0, 0, 0, 0};
  std::vector<std::pair<std::string, int64_t>> scalars;
  std::vector<CheckpointSectionSpec> sections;
};

// Accounting for one streaming save.
struct CheckpointSaveStats {
  // Largest transient allocation on the save path: preamble + manifest +
  // producer staging + the checksum read-back chunk. Never includes a full
  // table image — that is the point of the streaming writer.
  uint64_t peak_bytes = 0;
  uint64_t bytes_written = 0;  // final file size
  double seconds = 0.0;        // wall time of the whole save (incl. fsync)
};

// Streams `request` to `path`: manifest first, each section at its aligned
// offset, data checksum folded incrementally (scatter-written sections are
// re-folded from the tmp file in bounded chunks), preamble written last, then
// Commit(). Byte-identical to the historical whole-image writer for the same
// logical content. Aborts on IO errors, like SaveCheckpoint.
CheckpointSaveStats SaveCheckpointStreaming(const CheckpointSaveRequest& request,
                                            const std::string& path);

// ---------------------------------------------------------------------------
// Manifest-driven restore
// ---------------------------------------------------------------------------

// One tensor section as laid out on disk: shape plus the absolute byte range of
// its payload within the checkpoint file.
struct CheckpointSectionInfo {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  uint64_t file_offset = 0;  // absolute offset of the payload in the file
  uint64_t bytes = 0;        // exact payload size (rows * cols * sizeof(float))
};

// The parsed preamble + manifest of a checkpoint file, without any payload.
struct CheckpointManifest {
  uint32_t version = 0;
  std::string kind;
  uint64_t run_seed = 0;
  uint64_t epoch = 0;
  uint64_t rng_state[4] = {0, 0, 0, 0};
  std::vector<std::pair<std::string, int64_t>> scalars;
  std::vector<CheckpointSectionInfo> sections;
  uint64_t data_start = 0;  // absolute file offset of the data block
  uint64_t data_bytes = 0;  // data block length (v2: includes alignment padding)
  // True when every section payload is 4 KiB-aligned in the file (format v2+):
  // the precondition for the serving tier's zero-copy mmap views.
  bool aligned_sections = false;

  // O(1) name lookup through an index built at parse time; falls back to a
  // linear scan for hand-assembled manifests whose index is stale.
  const CheckpointSectionInfo* FindSection(const std::string& name) const;
  int64_t scalar(const std::string& name, int64_t fallback) const;

  // name → sections index, filled by ParseCheckpointHead.
  std::unordered_map<std::string, size_t> section_index;
};

// Parses and validates only the head of a checkpoint file — preamble and
// manifest, with checksum — leaving the (possibly huge) data block untouched.
// This is the serving tier's entry point: ModelSnapshot maps the file and
// resolves section views through the returned offsets instead of deserialising
// payloads. Same error contract as LoadCheckpoint; the data-block checksum is
// NOT verified here (it would fault in every page).
bool ReadCheckpointManifest(const std::string& path, CheckpointManifest* out,
                            std::string* error);

// Validated random-access view of a checkpoint file: Open() checks the magic
// and version straight from the preamble (before sizing any allocation from
// untrusted fields), then parses the manifest; VerifyDataChecksum() folds the
// data-block checksum in bounded chunks; ReadSection/ReadRows pread payload
// ranges directly into caller memory. All reads go through File::TryReadAt, so
// a file truncated underneath the reader surfaces as `false` + error, never an
// abort.
class CheckpointReader {
 public:
  bool Open(const std::string& path, std::string* error);

  // Streams the data block and compares against the preamble's checksum.
  // Bounded memory (one chunk); call once after Open, before trusting payloads.
  bool VerifyDataChecksum(std::string* error);

  const CheckpointManifest& manifest() const { return manifest_; }
  const CheckpointSectionInfo* FindSection(const std::string& name) const {
    return manifest_.FindSection(name);
  }

  // Reads the whole payload of `s` (s.bytes bytes) into dst.
  bool ReadSection(const CheckpointSectionInfo& s, void* dst, std::string* error);

  // Reads rows [row, row + count) of `s` into dst; bounds-checked against the
  // section's validated geometry.
  bool ReadRows(const CheckpointSectionInfo& s, int64_t row, int64_t count,
                void* dst, std::string* error);

 private:
  std::unique_ptr<File> file_;
  CheckpointManifest manifest_;
  uint64_t data_checksum_ = 0;  // expected value, from the preamble
};

// ---------------------------------------------------------------------------
// Retention
// ---------------------------------------------------------------------------

// Per-epoch checkpoint naming under keep-last-k retention: "<base>.epoch<N>".
std::string CheckpointEpochPath(const std::string& base, int64_t epoch);

// Deletes the oldest "<base>.epoch<N>" files beyond the newest `keep_last_k`,
// and sweeps stale ".tmp" debris left by crashed saves — but never touches
// `keep_path` (the file just written) or its in-flight tmp. No-op when
// keep_last_k <= 0. Best-effort: unlink failures are ignored.
void PruneCheckpoints(const std::string& base, int64_t keep_last_k,
                      const std::string& keep_path);

// Returns the "<base>.epoch<N>" path with the largest N, or `base` itself if
// only a bare single-file checkpoint exists, or "" when neither does.
std::string LatestCheckpointPath(const std::string& base);

// ---------------------------------------------------------------------------
// Trainer save/restore core
// ---------------------------------------------------------------------------

// Section-name convention shared by both trainers: model parameter i is stored
// as "param<i>.value" / "param<i>.state" in Parameters() order.
std::string ParamSectionName(size_t index, const char* field);

// Restores one parameter from its checkpoint sections. The value must match the
// constructed shape; the accumulator may be empty (optimizer never ran). The
// gradient is re-zeroed (it is always zero at an epoch boundary).
void RestoreParamFromCheckpoint(Parameter* p, const Tensor& value,
                                const Tensor& state);

// The save/restore core both trainers share — kind tag, run seed, epoch count,
// RNG words, controller scalars, and the model-parameter sections — lives here
// so the validation sequence cannot drift between the two trainers. Trainers
// append any extra sections (e.g. the link-prediction embedding table) on top;
// RestoreTrainerCheckpointCore verifies the total section count is exactly
// params * 2 + extra_sections before restoring the parameters straight from the
// reader (no whole-checkpoint materialisation).
void BuildTrainerCheckpointRequest(const std::string& kind, uint64_t run_seed,
                                   int64_t epochs_completed, const Rng& rng,
                                   const PipelineController& controller,
                                   const std::vector<Parameter*>& params,
                                   CheckpointSaveRequest* out);
void RestoreTrainerCheckpointCore(CheckpointReader& reader, const std::string& kind,
                                  uint64_t run_seed, size_t extra_sections,
                                  const std::vector<Parameter*>& params, Rng* rng,
                                  int64_t* epochs_completed,
                                  PipelineController* controller);

}  // namespace mariusgnn

#endif  // SRC_CORE_CHECKPOINT_H_
