// Crash-safe checkpoint/restore of training state (epoch-boundary snapshots).
//
// A checkpoint is ONE file holding everything a trainer needs to continue a run
// bitwise-identically to one that never stopped: model parameters with their
// Adagrad accumulators, the embedding table (values + accumulator state, flushed
// through the PartitionBuffer in disk mode), the trainer's full RNG state, the
// run seed, and the number of completed epochs. The determinism contract makes
// this sufficient — every batch is a pure function of MixSeed(run_seed,
// batch_index) and consumption is in-order, so restoring {parameters,
// accumulators, embeddings, RNG words, epoch index} reproduces the exact
// continuation stream.
//
// On-disk layout (host endianness, like every other file in the repo):
//
//   [preamble: magic u64 | version u32 | kind_len u32 |
//    manifest_bytes u64 | manifest_checksum u64 | data_bytes u64 | data_checksum u64]
//   [manifest: kind chars | run_seed u64 | epoch u64 | rng_state u64[4] |
//    num_scalars u32, {name_len u32, name, value i64}... |
//    num_sections u32, {name_len u32, name, rows i64, cols i64,
//                       data_offset u64, data_bytes u64}...]
//   [data: tensor payloads, offsets relative to the data block]
//
// Since format version 2 the data block begins at the first 4 KiB boundary after
// the manifest and every section offset is rounded up to 4 KiB (gaps are zero
// padding, covered by the data checksum). Every payload therefore sits
// page-aligned in the file, so the serving tier can mmap a checkpoint and hand
// out zero-copy section views (src/serve/), and O_DIRECT readers need no bounce
// buffering. Version-1 files (tightly packed) remain readable; only writing is
// always v2.
//
// Both blobs carry FNV-1a 64 checksums; the format version is bumped on any
// layout change. SaveCheckpoint writes through AtomicFile (tmp → fsync →
// rename), so a crash mid-save leaves the previous checkpoint intact and at
// worst a stale <path>.tmp that the next save replaces. LoadCheckpoint validates
// magic, version, sizes, and checksums before touching any payload and reports
// corruption as a clear error instead of loading garbage (or aborting inside a
// huge allocation).
#ifndef SRC_CORE_CHECKPOINT_H_
#define SRC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/nn/parameter.h"
#include "src/pipeline/pipeline_controller.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace mariusgnn {

inline constexpr uint32_t kCheckpointFormatVersion = 2;
// Oldest version LoadCheckpoint / ReadCheckpointManifest still accept (v1:
// unpadded sections, no alignment guarantee).
inline constexpr uint32_t kMinCheckpointFormatVersion = 1;

struct Checkpoint {
  // Which trainer wrote this ("link_prediction" / "node_classification"); resume
  // refuses a mismatch.
  std::string kind;
  uint64_t run_seed = 0;
  // Epochs completed when the snapshot was taken; training continues at epoch+1.
  uint64_t epoch = 0;
  // Full xoshiro256** state of the trainer RNG at the epoch boundary.
  uint64_t rng_state[4] = {0, 0, 0, 0};
  // Small named integers (e.g. the pipeline controller's worker decision).
  std::vector<std::pair<std::string, int64_t>> scalars;
  // Named tensor sections in a fixed, kind-defined order: weight parameter
  // values/accumulators, then embedding values/accumulators.
  std::vector<std::pair<std::string, Tensor>> tensors;

  // Convenience lookups; abort with a clear message when the section is absent
  // (a well-formed checkpoint of the right kind always has them).
  const Tensor& tensor(const std::string& name) const;
  int64_t scalar(const std::string& name, int64_t fallback) const;
};

// Serialises and writes `checkpoint` to `path` atomically. Aborts on IO errors
// (consistent with the rest of the storage layer: a failed save must not go
// unnoticed), never leaves a torn file behind.
void SaveCheckpoint(const Checkpoint& checkpoint, const std::string& path);

// Reads and validates `path`. Returns false — with a human-readable reason in
// *error — for any missing, truncated, corrupt, or version-mismatched file;
// *out is only written on success. Never aborts on bad input.
bool LoadCheckpoint(const std::string& path, Checkpoint* out, std::string* error);

// One tensor section as laid out on disk: shape plus the absolute byte range of
// its payload within the checkpoint file.
struct CheckpointSectionInfo {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  uint64_t file_offset = 0;  // absolute offset of the payload in the file
  uint64_t bytes = 0;        // exact payload size (rows * cols * sizeof(float))
};

// The parsed preamble + manifest of a checkpoint file, without any payload.
struct CheckpointManifest {
  uint32_t version = 0;
  std::string kind;
  uint64_t run_seed = 0;
  uint64_t epoch = 0;
  uint64_t rng_state[4] = {0, 0, 0, 0};
  std::vector<std::pair<std::string, int64_t>> scalars;
  std::vector<CheckpointSectionInfo> sections;
  uint64_t data_start = 0;  // absolute file offset of the data block
  uint64_t data_bytes = 0;  // data block length (v2: includes alignment padding)
  // True when every section payload is 4 KiB-aligned in the file (format v2+):
  // the precondition for the serving tier's zero-copy mmap views.
  bool aligned_sections = false;

  const CheckpointSectionInfo* FindSection(const std::string& name) const;
};

// Parses and validates only the head of a checkpoint file — preamble and
// manifest, with checksum — leaving the (possibly huge) data block untouched.
// This is the serving tier's entry point: ModelSnapshot maps the file and
// resolves section views through the returned offsets instead of deserialising
// payloads. Same error contract as LoadCheckpoint; the data-block checksum is
// NOT verified here (it would fault in every page).
bool ReadCheckpointManifest(const std::string& path, CheckpointManifest* out,
                            std::string* error);

// Section-name convention shared by both trainers: model parameter i is stored
// as "param<i>.value" / "param<i>.state" in Parameters() order.
std::string ParamSectionName(size_t index, const char* field);

// Restores one parameter from its checkpoint sections. The value must match the
// constructed shape; the accumulator may be empty (optimizer never ran). The
// gradient is re-zeroed (it is always zero at an epoch boundary).
void RestoreParamFromCheckpoint(Parameter* p, const Tensor& value,
                                const Tensor& state);

// The save/restore core both trainers share — kind tag, run seed, epoch count,
// RNG words, controller scalars, and the model-parameter sections — lives here
// so the validation sequence cannot drift between the two trainers. Trainers
// append any extra sections (e.g. the link-prediction embedding table) on top;
// RestoreTrainerCheckpointCore verifies the total section count is exactly
// params * 2 + extra_sections.
void SaveTrainerCheckpointCore(const std::string& kind, uint64_t run_seed,
                               int64_t epochs_completed, const Rng& rng,
                               const PipelineController& controller,
                               const std::vector<Parameter*>& params,
                               Checkpoint* out);
void RestoreTrainerCheckpointCore(const Checkpoint& ck, const std::string& kind,
                                  uint64_t run_seed, size_t extra_sections,
                                  const std::vector<Parameter*>& params, Rng* rng,
                                  int64_t* epochs_completed,
                                  PipelineController* controller);

}  // namespace mariusgnn

#endif  // SRC_CORE_CHECKPOINT_H_
