#include "src/core/trainer_base.h"

#include <cstring>

#include "src/core/checkpoint.h"
#include "src/util/check.h"

namespace mariusgnn {

TrainerBase::TrainerBase(const Graph* graph, TrainingConfig config, TaskKind kind)
    : graph_(graph),
      config_(std::move(config)),
      rng_(config_.seed),
      compute_(config_.MakeComputeContext(&compute_stats_)),
      controller_(config_.MakePipelineController()),
      model_(ModelState::Build(kind, *graph, config_.model_config(), rng_)) {
  model_.SetCompute(&compute_);
  if (config_.checkpoint.every_n_epochs > 0) {
    MG_CHECK_MSG(!config_.checkpoint.path.empty(),
                 "checkpoint_every_n_epochs requires checkpoint_path");
  }
}

TrainerBase::~TrainerBase() = default;

EpochStats TrainerBase::TrainEpoch() {
  epoch_determinism_.Reset();
  const uint64_t rv_before = RvRuntime::Global().TotalViolations();
  EpochStats stats = TrainEpochImpl();
  last_determinism_hash_ = epoch_determinism_.value();
  stats.determinism_hash = last_determinism_hash_;
  stats.rv_violations = RvRuntime::Global().TotalViolations() - rv_before;
  ++epochs_completed_;
  if (config_.checkpoint.every_n_epochs > 0 &&
      epochs_completed_ % config_.checkpoint.every_n_epochs == 0) {
    if (config_.checkpoint.keep_last_k > 0) {
      // Keep-last-k retention: each save lands in its own per-epoch file, and
      // only after a successful Commit are the oldest files (and any stale
      // .tmp debris from crashed saves) pruned — the file just written is
      // never a deletion candidate.
      const std::string epoch_path =
          CheckpointEpochPath(config_.checkpoint.path, epochs_completed_);
      SaveCheckpoint(epoch_path);
      PruneCheckpoints(config_.checkpoint.path, config_.checkpoint.keep_last_k,
                       epoch_path);
    } else {
      SaveCheckpoint(config_.checkpoint.path);
    }
    stats.checkpoint_save_seconds = last_checkpoint_stats_.seconds;
    stats.checkpoint_peak_bytes = last_checkpoint_stats_.peak_bytes;
  }
  return stats;
}

void TrainerBase::AppendCheckpointSections(CheckpointSaveRequest* request) {
  (void)request;
}

void TrainerBase::RestoreCheckpointSections(CheckpointReader& reader) {
  (void)reader;
}

size_t TrainerBase::NumExtraCheckpointSections() const { return 0; }

void TrainerBase::SaveCheckpoint(const std::string& path) {
  CheckpointSaveRequest request;
  BuildTrainerCheckpointRequest(CheckpointKindName(model_.kind), config_.seed,
                                epochs_completed_, rng_, controller_, model_.params,
                                &request);
  // Last completed epoch's determinism hash, bitcast into the named-scalar
  // list (docs/CHECKPOINT_FORMAT.md): the resumed trainer re-exposes it, so a
  // replica can compare trajectories against the checkpointed run with one u64
  // and no new manifest version.
  int64_t hash_bits = 0;
  std::memcpy(&hash_bits, &last_determinism_hash_, sizeof(hash_bits));
  request.scalars.emplace_back("determinism_hash", hash_bits);
  AppendCheckpointSections(&request);
  last_checkpoint_stats_ = SaveCheckpointStreaming(request, path);
}

void TrainerBase::ResumeFrom(const std::string& path) {
  CheckpointReader reader;
  std::string error;
  MG_CHECK_MSG(reader.Open(path, &error), error.c_str());
  // Validate the full data block BEFORE touching any trainer state, preserving
  // the all-or-nothing restore contract the whole-file loader provided.
  MG_CHECK_MSG(reader.VerifyDataChecksum(&error), error.c_str());
  RestoreTrainerCheckpointCore(reader, CheckpointKindName(model_.kind),
                               config_.seed, NumExtraCheckpointSections(),
                               model_.params, &rng_, &epochs_completed_,
                               &controller_);
  const int64_t hash_bits = reader.manifest().scalar("determinism_hash", 0);
  std::memcpy(&last_determinism_hash_, &hash_bits, sizeof(last_determinism_hash_));
  RestoreCheckpointSections(reader);
}

}  // namespace mariusgnn
