#include "src/core/trainer_base.h"

#include <cstring>

#include "src/core/checkpoint.h"
#include "src/storage/embedding_store.h"
#include "src/storage/partition_buffer.h"
#include "src/util/check.h"

namespace mariusgnn {

TrainerBase::TrainerBase(const Graph* graph, TrainingConfig config, TaskKind kind)
    : graph_(graph),
      config_(std::move(config)),
      rng_(config_.seed),
      compute_(config_.MakeComputeContext(&compute_stats_)),
      controller_(config_.MakePipelineController()),
      model_(ModelState::Build(kind, *graph, config_.model_config(), rng_)) {
  model_.SetCompute(&compute_);
  exchange_ = config_.MakeGradientExchange();
  replica_.rank = exchange_->rank();
  replica_.world = exchange_->world();
  if (config_.checkpoint.every_n_epochs > 0) {
    MG_CHECK_MSG(!config_.checkpoint.path.empty(),
                 "checkpoint_every_n_epochs requires checkpoint_path");
  }
}

TrainerBase::~TrainerBase() = default;

EpochStats TrainerBase::TrainEpoch() {
  epoch_determinism_.Reset();
  const uint64_t rv_before = RvRuntime::Global().TotalViolations();
  EpochStats stats = TrainEpochImpl();
  last_determinism_hash_ = epoch_determinism_.value();
  stats.determinism_hash = last_determinism_hash_;
  // Cross-replica exchange-and-compare: every rank folded the identical loss
  // stream, so all hashes must agree with rank 0's; any disagreement reports a
  // comm.replica_hash violation inside the exchange (counted in rv_violations
  // below). Identity for world == 1.
  exchange_->ExchangeEpochHash(last_determinism_hash_);
  const CommStats comm = exchange_->ConsumeStats();
  stats.AccumulateComm(comm.blocking_seconds, comm.background_seconds,
                       stats.compute_seconds);
  stats.comm_bytes = comm.bytes_sent + comm.bytes_received;
  stats.rv_violations = RvRuntime::Global().TotalViolations() - rv_before;
  ++epochs_completed_;
  // Auto-save on rank 0 only: every replica runs the identical config, so with
  // world > 1 all ranks would otherwise race on the same checkpoint path (and
  // the same '<path>.tmp' staging file, which PruneCheckpoints also treats as
  // stale debris — a concurrent save from another rank could be corrupted or
  // deleted mid-write). Replica state is bitwise-identical at every epoch
  // boundary (asserted by the hash exchange above), so rank 0's snapshot is
  // everyone's snapshot. The hash exchange is also a rendezvous that runs
  // after the impl's synchronous flush, so rank 0 reads fully-written shared
  // storage. docs/DISTRIBUTED.md documents the contract.
  if (replica_.rank == 0 && config_.checkpoint.every_n_epochs > 0 &&
      epochs_completed_ % config_.checkpoint.every_n_epochs == 0) {
    if (config_.checkpoint.keep_last_k > 0) {
      // Keep-last-k retention: each save lands in its own per-epoch file, and
      // only after a successful Commit are the oldest files (and any stale
      // .tmp debris from crashed saves) pruned — the file just written is
      // never a deletion candidate.
      const std::string epoch_path =
          CheckpointEpochPath(config_.checkpoint.path, epochs_completed_);
      SaveCheckpoint(epoch_path);
      PruneCheckpoints(config_.checkpoint.path, config_.checkpoint.keep_last_k,
                       epoch_path);
    } else {
      SaveCheckpoint(config_.checkpoint.path);
    }
    stats.checkpoint_save_seconds = last_checkpoint_stats_.seconds;
    stats.checkpoint_peak_bytes = last_checkpoint_stats_.peak_bytes;
  }
  return stats;
}

void TrainerBase::SharedWritebackBarrier(PartitionBuffer* buffer) {
  if (buffer == nullptr || !buffer->partition_ownership_active()) {
    return;
  }
  // Local half: this rank's dirty evictions may still be queued in the IO
  // engine — only a completed write makes the shared file safe to re-read.
  buffer->DrainIo();
  // Global half: no rank proceeds (and thus re-admits a partition) until every
  // rank's own write-backs are durable.
  exchange_->Barrier();
}

void TrainerBase::ExchangeApply(bool has_batch, float loss,
                                const std::vector<int64_t>* sparse_nodes,
                                const Tensor* sparse_grads,
                                EmbeddingStore* sparse_store, float sparse_lr,
                                EpochStats* stats) {
  GradientStep step;
  step.has_batch = has_batch;
  step.loss = loss;
  step.dense = &model_.params;
  step.sparse_nodes = sparse_nodes;
  step.sparse_grads = sparse_grads;
  const ReducedStep& reduced = exchange_->Exchange(step);

  // Fold every contributed rank's loss in ascending rank order — the global
  // batch order — so all replicas hash and average the identical loss stream
  // (the in-order consumer makes this the epoch's determinism hash).
  const int32_t world = exchange_->world();
  for (int32_t r = 0; r < world; ++r) {
    if (reduced.contributed[static_cast<size_t>(r)] != 0) {
      epoch_determinism_.FoldFloat(reduced.losses[static_cast<size_t>(r)]);
      stats->loss += reduced.losses[static_cast<size_t>(r)];
      ++stats->num_global_batches;
    }
  }

  // Apply the merged sparse rows, then the reduced dense gradients — the two
  // touch disjoint parameters, preserving the historical sparse-then-dense
  // order inside the trainers' consume step.
  if (sparse_store != nullptr && reduced.sparse_nodes != nullptr &&
      !reduced.sparse_nodes->empty()) {
    sparse_store->ApplyGradients(*reduced.sparse_nodes, *reduced.sparse_grads,
                                 sparse_lr);
  }
  if (!model_.params.empty()) {
    if (reduced.dense != nullptr) {
      model_.weight_opt->StepAllFromReduced(model_.params, *reduced.dense);
    } else {
      model_.weight_opt->StepAll(model_.params);
    }
  }
}

void TrainerBase::AppendCheckpointSections(CheckpointSaveRequest* request) {
  (void)request;
}

void TrainerBase::RestoreCheckpointSections(CheckpointReader& reader) {
  (void)reader;
}

size_t TrainerBase::NumExtraCheckpointSections() const { return 0; }

void TrainerBase::SaveCheckpoint(const std::string& path) {
  CheckpointSaveRequest request;
  BuildTrainerCheckpointRequest(CheckpointKindName(model_.kind), config_.seed,
                                epochs_completed_, rng_, controller_, model_.params,
                                &request);
  // Last completed epoch's determinism hash, bitcast into the named-scalar
  // list (docs/CHECKPOINT_FORMAT.md): the resumed trainer re-exposes it, so a
  // replica can compare trajectories against the checkpointed run with one u64
  // and no new manifest version.
  int64_t hash_bits = 0;
  std::memcpy(&hash_bits, &last_determinism_hash_, sizeof(hash_bits));
  request.scalars.emplace_back("determinism_hash", hash_bits);
  AppendCheckpointSections(&request);
  last_checkpoint_stats_ = SaveCheckpointStreaming(request, path);
}

void TrainerBase::ResumeFrom(const std::string& path) {
  CheckpointReader reader;
  std::string error;
  MG_CHECK_MSG(reader.Open(path, &error), error.c_str());
  // Validate the full data block BEFORE touching any trainer state, preserving
  // the all-or-nothing restore contract the whole-file loader provided.
  MG_CHECK_MSG(reader.VerifyDataChecksum(&error), error.c_str());
  RestoreTrainerCheckpointCore(reader, CheckpointKindName(model_.kind),
                               config_.seed, NumExtraCheckpointSections(),
                               model_.params, &rng_, &epochs_completed_,
                               &controller_);
  const int64_t hash_bits = reader.manifest().scalar("determinism_hash", 0);
  std::memcpy(&last_determinism_hash_, &hash_bits, sizeof(last_determinism_hash_));
  RestoreCheckpointSections(reader);
}

}  // namespace mariusgnn
