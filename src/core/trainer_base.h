// Shared trainer surface: both task trainers own a ModelState built through the
// same code path and expose one checkpoint/epoch contract.
//
// TrainerBase holds everything task-independent — config, RNG, the stage-3
// compute handle, the in-epoch pipeline controller, and the model — and
// implements TrainEpoch (epoch counting + auto-checkpoint), SaveCheckpoint, and
// ResumeFrom once. Derived trainers implement TrainEpochImpl plus the checkpoint
// extra-section hooks (the link-prediction embedding table; node classification
// has none), so the save/restore sequence cannot drift between tasks.
#ifndef SRC_CORE_TRAINER_BASE_H_
#define SRC_CORE_TRAINER_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/comm/gradient_exchange.h"
#include "src/core/checkpoint.h"
#include "src/core/config.h"
#include "src/core/model.h"
#include "src/graph/graph.h"
#include "src/pipeline/pipeline_controller.h"
#include "src/util/compute.h"
#include "src/util/rng.h"
#include "src/util/rv_monitor.h"

namespace mariusgnn {

class EmbeddingStore;
class PartitionBuffer;

class TrainerBase {
 public:
  virtual ~TrainerBase();

  // Runs one epoch, bumps the completed-epoch count, and auto-saves to
  // config.checkpoint.path every config.checkpoint.every_n_epochs epochs.
  EpochStats TrainEpoch();

  // Crash-safe checkpointing (src/core/checkpoint.h). SaveCheckpoint streams an
  // atomic epoch-boundary snapshot: model parameters + Adagrad accumulators,
  // the trainer RNG, the completed-epoch count, and any task sections the
  // derived trainer appends (the link-prediction embedding table, streamed
  // partition-by-partition in disk mode — never a full table image). ResumeFrom
  // restores a snapshot into a trainer constructed with the SAME config; the
  // continued run is bitwise-identical to one that never stopped (every batch
  // is a pure function of MixSeed(run_seed, batch_index)).
  void SaveCheckpoint(const std::string& path);
  void ResumeFrom(const std::string& path);
  int64_t epochs_completed() const { return epochs_completed_; }

  // Accounting of the most recent SaveCheckpoint (explicit or auto-save):
  // peak transient allocation, bytes written, wall seconds. Zeroes before any
  // save has run.
  const CheckpointSaveStats& last_checkpoint_stats() const {
    return last_checkpoint_stats_;
  }

  // Determinism hash of the most recent completed epoch (also in that epoch's
  // EpochStats.determinism_hash, and in checkpoints as the "determinism_hash"
  // manifest scalar). 0 before any epoch has run.
  uint64_t last_determinism_hash() const { return last_determinism_hash_; }

  const TrainingConfig& config() const { return config_; }
  const ModelState& model() const { return model_; }

 protected:
  // Builds the ModelState (validating the config for `kind`) and the shared
  // compute/controller wiring. Derived ctors add task storage on top; any RNG
  // draws they make come after the model's, preserving historical draw order.
  TrainerBase(const Graph* graph, TrainingConfig config, TaskKind kind);

  virtual EpochStats TrainEpochImpl() = 0;

  // The one place a batch's gradients meet the optimizer: routes this rank's
  // step (dense p.grad + touched sparse rows + mean loss) through the
  // gradient-exchange seam, folds every contributed rank's loss into the
  // epoch's determinism hash and loss accumulator in ascending rank order (==
  // global batch order), applies the merged sparse rows to `sparse_store` (may
  // be null), and applies the reduced dense gradients through the optimizer's
  // apply-from-reduced path. Batchless trailing steps (the global batch count
  // was not divisible by world) call this with has_batch=false and null
  // gradients so every rank performs the same exchange sequence.
  void ExchangeApply(bool has_batch, float loss,
                     const std::vector<int64_t>* sparse_nodes,
                     const Tensor* sparse_grads, EmbeddingStore* sparse_store,
                     float sparse_lr, EpochStats* stats);

  // Shared-storage write-back fence, called by a derived trainer at every
  // partition-set transition when `buffer` has an active ownership map (i.e.
  // multiple replicas share one backing file and each writes back only its
  // owned partitions). Drains this rank's async write-backs, then runs a
  // cross-replica rendezvous barrier — so by the time any rank re-admits a
  // partition, its owner's dirty image is fully on disk and no reader can see
  // a stale or torn partition. No-op when ownership is inactive (world == 1,
  // private storage, or in-memory mode).
  void SharedWritebackBarrier(PartitionBuffer* buffer);

  // Checkpoint extension hooks: extra sections after the model-parameter
  // sections (order and count must agree between the three). Append pushes
  // CheckpointSectionSpec producers (shapes known up front, payloads streamed
  // on demand); Restore pulls section ranges straight from the reader.
  virtual void AppendCheckpointSections(CheckpointSaveRequest* request);
  virtual void RestoreCheckpointSections(CheckpointReader& reader);
  virtual size_t NumExtraCheckpointSections() const;

  const Graph* graph_;
  TrainingConfig config_;
  Rng rng_;
  int64_t epochs_completed_ = 0;

  // Stage-3 parallel compute: handle threaded into the model's components (and
  // the derived trainer's stores), plus the per-epoch scaling counters behind
  // EpochStats.compute_parallel_efficiency.
  ComputeStats compute_stats_;
  ComputeContext compute_;
  // In-epoch pipeline controller (see pipeline_controller.h).
  PipelineController controller_;

  // Gradient-exchange seam (src/comm/): LocalExchange identity for world=1,
  // ProcessGroupExchange for multi-replica runs. Built in the ctor, so a
  // multi-replica trainer blocks there until all ranks connect.
  std::unique_ptr<GradientExchange> exchange_;
  // Batch-index → replica/seed partitioning shared by both trainers' producer
  // lambdas (src/comm/gradient_exchange.h).
  ReplicaBatchPartition replica_;

  // Per-epoch determinism hash: TrainEpoch resets it, the derived trainer's
  // in-order consumer folds each batch's mean-loss bits into it, and TrainEpoch
  // publishes the result (EpochStats + last_determinism_hash_).
  DeterminismHash epoch_determinism_;
  uint64_t last_determinism_hash_ = 0;

  CheckpointSaveStats last_checkpoint_stats_;

  ModelState model_;
};

}  // namespace mariusgnn

#endif  // SRC_CORE_TRAINER_BASE_H_
