#!/usr/bin/env python3
"""Fail CI when the docs drift from the code they describe.

Checks, over README.md and docs/*.md:

  1. Every `EpochStats.<field>` reference names a real member of the
     EpochStats struct in src/core/config.h.
  2. Every `storage.<knob>` / `pipeline.<knob>` / `checkpoint.<knob>` /
     `replica.<knob>` reference names a real member of StorageOptions /
     PipelineOptions / CheckpointOptions in src/core/config.h or
     ReplicaOptions in src/comm/gradient_exchange.h (the documented
     convention for naming config knobs), OR one of the dotted
     runtime-verification invariant names defined in src/util/rv_monitor.cc
     (which share the subsystem prefixes). `comm.<name>` references are
     invariant-only: they must match an invariant name exactly.
  3. Every relative markdown link points at a file that exists.

The parser is deliberately permissive (it may admit a few extra identifiers
from struct method bodies); it exists to catch renamed/removed fields and
dead links, not to be a C++ front end.
"""

import os
import re
import sys

REPO_ROOT = os.path.normpath(os.path.join(os.path.dirname(__file__), "..", ".."))
CONFIG_H = os.path.join(REPO_ROOT, "src", "core", "config.h")
GRADIENT_EXCHANGE_H = os.path.join(
    REPO_ROOT, "src", "comm", "gradient_exchange.h"
)
RV_MONITOR_CC = os.path.join(REPO_ROOT, "src", "util", "rv_monitor.cc")

# Struct name -> (doc prefix used to reference its members, defining header).
STRUCTS = {
    "EpochStats": ("EpochStats", CONFIG_H),
    "StorageOptions": ("storage", CONFIG_H),
    "PipelineOptions": ("pipeline", CONFIG_H),
    "CheckpointOptions": ("checkpoint", CONFIG_H),
    "ReplicaOptions": ("replica", GRADIENT_EXCHANGE_H),
}

# Prefixes with no config struct behind them: every `<prefix>.<name>` doc
# reference must be an rv_monitor.cc invariant name, nothing else.
INVARIANT_ONLY_PREFIXES = ["comm"]

MEMBER_RE = re.compile(
    r"^\s*(?:[A-Za-z_][\w:<>,*&\s]*?[\s*&])([A-Za-z_]\w*)\s*(?:=[^;]*)?;", re.M
)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def struct_body(source, name, path):
    m = re.search(r"\bstruct\s+" + name + r"\s*\{", source)
    if m is None:
        sys.exit(f"check_docs_drift: struct {name} not found in {path}")
    depth = 0
    for i in range(m.end() - 1, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                return source[m.end() : i]
    sys.exit(f"check_docs_drift: unbalanced braces in struct {name}")


def struct_members(source, name, path):
    members = set()
    for line in struct_body(source, name, path).splitlines():
        code = line.split("//", 1)[0]
        if "(" in code:  # skip method declarations/calls
            continue
        m = MEMBER_RE.match(code)
        if m:
            members.add(m.group(1))
    return members


def rv_invariant_names():
    """The dotted invariant names RvInvariantName returns ("pipeline.ticket_order",
    ...) — docs reference monitored invariants by these names."""
    with open(RV_MONITOR_CC, encoding="utf-8") as f:
        source = f.read()
    return set(re.findall(r'return\s+"([a-z_]+\.[a-z_]+)"', source))


def doc_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return [f for f in files if os.path.isfile(f)]


def main():
    sources = {}
    known = {}
    for struct, (prefix, header) in STRUCTS.items():
        if header not in sources:
            with open(header, encoding="utf-8") as f:
                sources[header] = f.read()
        known[prefix] = struct_members(sources[header], struct, header)
    for prefix in INVARIANT_ONLY_PREFIXES:
        known[prefix] = set()
    invariants = rv_invariant_names()

    errors = []
    for path in doc_files():
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, encoding="utf-8") as f:
            text = f.read()

        for prefix, members in known.items():
            for m in re.finditer(r"\b" + prefix + r"\.([a-z_][a-z0-9_]*)\b", text):
                field = m.group(1)
                # Skip file-extension lookalikes ("training_pipeline.h" never
                # matches because of \b, but a bare "pipeline.h" path would).
                if field in ("h", "cc", "md", "json", "py", "yml"):
                    continue
                if f"{prefix}.{field}" in invariants:
                    continue
                if field not in members:
                    line = text.count("\n", 0, m.start()) + 1
                    errors.append(
                        f"{rel}:{line}: `{prefix}.{field}` is neither a config "
                        f"member nor an rv invariant"
                    )

        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target_path)
            )
            if not os.path.exists(resolved):
                line = text.count("\n", 0, m.start()) + 1
                errors.append(f"{rel}:{line}: dangling link `{target}`")

    if errors:
        print("docs drift detected:")
        for e in errors:
            print("  " + e)
        return 1
    print(f"docs drift check: {len(doc_files())} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
