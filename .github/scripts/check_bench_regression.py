#!/usr/bin/env python3
"""Warn-only bench-regression gate.

Compares the current bench_pipeline.json against the one from the previous
successful main-branch run and emits GitHub warning annotations for any
configuration whose epoch time regressed by more than the threshold. Never
fails the build: epoch times on shared CI runners are noisy, so a red X would
cry wolf — the annotation puts the number in front of a human instead.
"""
import argparse
import json
import os
import sys


def load_runs(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["mode"], r["name"]): r for r in data.get("runs", [])}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--previous", required=True, help="previous main-branch bench_pipeline.json")
    parser.add_argument("--current", required=True, help="bench_pipeline.json from this run")
    parser.add_argument("--threshold-pct", type=float, default=15.0)
    args = parser.parse_args()

    if not os.path.exists(args.previous):
        print(f"::notice::No previous main-branch bench artifact at {args.previous}; skipping regression check")
        return 0
    if not os.path.exists(args.current):
        print(f"::warning::Current bench output {args.current} missing; bench step likely failed")
        return 0

    try:
        prev = load_runs(args.previous)
        cur = load_runs(args.current)
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as e:
        print(f"::warning::Could not parse bench JSON ({e}); skipping regression check")
        return 0

    regressions = 0
    for key in sorted(set(prev) & set(cur)):
        label = f"{key[0]}/{key[1]}"
        # Training rows (bench_pipeline.json) compare on epoch time; serving
        # rows (bench_serving.json) have no epoch_sec and fall through to the
        # latency/throughput comparisons below.
        p, c = prev[key].get("epoch_sec"), cur[key].get("epoch_sec")
        if isinstance(p, (int, float)) and isinstance(c, (int, float)) and p > 0:
            delta_pct = 100.0 * (c - p) / p
            print(f"{label}: {p:.4f}s -> {c:.4f}s ({delta_pct:+.1f}%)")
            if delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=Bench regression::{label} epoch time regressed "
                    f"{delta_pct:+.1f}% ({p:.4f}s -> {c:.4f}s, threshold {args.threshold_pct:.0f}%)"
                )
        # Unhidden-IO stall is tracked alongside epoch time (warn-only, like
        # everything here). Sub-10ms stalls are below scheduler noise on shared
        # runners, so only compare when the previous run had a meaningful stall.
        ps, cs = prev[key].get("io_stall_sec"), cur[key].get("io_stall_sec")
        if isinstance(ps, (int, float)) and isinstance(cs, (int, float)) and ps >= 0.010:
            stall_delta_pct = 100.0 * (cs - ps) / ps
            print(f"{label}: io_stall {ps:.4f}s -> {cs:.4f}s ({stall_delta_pct:+.1f}%)")
            if stall_delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=IO stall regression::{label} unhidden IO stall regressed "
                    f"{stall_delta_pct:+.1f}% ({ps:.4f}s -> {cs:.4f}s, "
                    f"threshold {args.threshold_pct:.0f}%)"
                )
        # Streamed checkpoint save time (warn-only). Saves on the bench graph
        # take milliseconds, so only compare when the previous run's save was
        # long enough to measure above filesystem-cache noise.
        pk, ck = prev[key].get("checkpoint_save_sec"), cur[key].get("checkpoint_save_sec")
        if isinstance(pk, (int, float)) and isinstance(ck, (int, float)) and pk >= 0.010:
            save_delta_pct = 100.0 * (ck - pk) / pk
            print(f"{label}: checkpoint_save {pk:.4f}s -> {ck:.4f}s ({save_delta_pct:+.1f}%)")
            if save_delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=Checkpoint save regression::{label} checkpoint save regressed "
                    f"{save_delta_pct:+.1f}% ({pk:.4f}s -> {ck:.4f}s, "
                    f"threshold {args.threshold_pct:.0f}%)"
                )
        # Gradient-exchange stall time (warn-only). Single-process bench rows
        # run the zero-copy LocalExchange, so comm_sec is ~0 and the >= 10ms
        # floor keeps those rows out; the track exists for any future
        # multi-replica bench rows.
        pm, cm = prev[key].get("comm_sec"), cur[key].get("comm_sec")
        if isinstance(pm, (int, float)) and isinstance(cm, (int, float)) and pm >= 0.010:
            comm_delta_pct = 100.0 * (cm - pm) / pm
            print(f"{label}: comm {pm:.4f}s -> {cm:.4f}s ({comm_delta_pct:+.1f}%)")
            if comm_delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=Comm regression::{label} gradient-exchange time regressed "
                    f"{comm_delta_pct:+.1f}% ({pm:.4f}s -> {cm:.4f}s, "
                    f"threshold {args.threshold_pct:.0f}%)"
                )
        # Serving rows (bench_serving.json) carry latency/throughput instead of
        # epoch time: tail latency regresses upward, QPS regresses downward.
        pp, cp = prev[key].get("p99_ms"), cur[key].get("p99_ms")
        if isinstance(pp, (int, float)) and isinstance(cp, (int, float)) and pp > 0:
            p99_delta_pct = 100.0 * (cp - pp) / pp
            print(f"{label}: p99 {pp:.3f}ms -> {cp:.3f}ms ({p99_delta_pct:+.1f}%)")
            if p99_delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=Serving p99 regression::{label} p99 latency regressed "
                    f"{p99_delta_pct:+.1f}% ({pp:.3f}ms -> {cp:.3f}ms, "
                    f"threshold {args.threshold_pct:.0f}%)"
                )
        pq, cq = prev[key].get("qps"), cur[key].get("qps")
        if isinstance(pq, (int, float)) and isinstance(cq, (int, float)) and pq > 0:
            qps_delta_pct = 100.0 * (cq - pq) / pq
            print(f"{label}: qps {pq:.1f} -> {cq:.1f} ({qps_delta_pct:+.1f}%)")
            if -qps_delta_pct > args.threshold_pct:
                regressions += 1
                print(
                    f"::warning title=Serving QPS regression::{label} throughput dropped "
                    f"{qps_delta_pct:+.1f}% ({pq:.1f} -> {cq:.1f} qps, "
                    f"threshold {args.threshold_pct:.0f}%)"
                )
    if regressions == 0:
        print(f"No epoch-time, io-stall, checkpoint-save, comm, or serving regression beyond {args.threshold_pct:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
